// lz::obs — request-scoped span tracing.
//
// Spans are duration events with parent/child causality: a request span
// opened in a workload client nests the kernel task that executes it, the
// syscalls that task issues, the HVC forwards those syscalls become, and
// the gate/PAN/world switches LightZone performs on their behalf. Each
// completed span records [start, end] in simulated cycles plus the tenant
// attribution (VMID/ASID) active at open time, so one request can be
// followed across layers and across simulated cores.
//
// Causality model: every simulated thread keeps a thread-local stack of
// open spans; `begin` parents the new span under the top of that stack.
// When work hops threads (kernel::Kernel::run_on pushes a task onto
// another core's queue), the *enqueuing* side captures `current()` and the
// worker re-establishes it with an `Adopt` guard before opening its task
// span — the ambient parent — so cross-core edges stay connected.
//
// Cost model mirrors the event trace: disarmed, `begin` is one relaxed
// load and `end` is a no-op (id 0); spans never charge simulated cycles,
// so arming them cannot perturb cycle totals or golden reports. Defining
// LZ_OBS_NO_TRACE compiles the helpers down to nothing.
//
// Export is Chrome trace_event "X" (complete) events: Perfetto nests them
// by containment per track (tid = simulated core), giving the per-request
// flame view without B/E pairing.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "support/types.h"

namespace lz::obs {

enum class SpanKind : u8 {
  kRequest,     // one client request (workload layer)
  kTask,        // one kernel::Kernel queued task execution
  kSyscall,     // one syscall dispatch (kernel layer)
  kHvcForward,  // one HVC forwarded to a privileged C++ layer
  kGateSwitch,  // one secure call-gate domain switch
  kPanSwitch,   // one PAN domain switch
  kWorldSwitch, // one VM / LightZone world entry-exit pair
  kCount,
};

const char* to_string(SpanKind kind);

struct SpanEvent {
  Cycles start = 0;
  Cycles end = 0;
  u64 id = 0;      // unique per armed session, never 0
  u64 parent = 0;  // 0 == root
  u64 arg = 0;     // kind-specific (request #, syscall nr, gate id, ...)
  unsigned core = 0;
  u16 vmid = 0, asid = 0;
  SpanKind kind = SpanKind::kCount;
};

class SpanTracer {
 public:
  static constexpr std::size_t kMaxDepth = 16;

  // Allocate (or resize) the completed-span ring and start recording.
  // Re-arming clears recorded spans but keeps the id sequence fresh.
  void arm(std::size_t capacity);
  void disarm() { armed_.store(false, std::memory_order_relaxed); }
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  // Drop recorded spans and statistics; keeps armed state and capacity.
  void clear();

#ifdef LZ_OBS_NO_TRACE
  u64 begin(SpanKind, u64 = 0, u16 = 0, u16 = 0) { return 0; }
  void end(u64) {}
  static u64 current() { return 0; }
#else
  // Open a span under the current thread's innermost open span (or the
  // adopted ambient parent at depth 0). Returns the span id, or 0 when
  // disarmed / the per-thread stack is full.
  u64 begin(SpanKind kind, u64 arg = 0, u16 vmid = 0, u16 asid = 0);
  // Close the span; ids are closed innermost-first (RAII enforces this).
  // end(0) is a no-op, so disarmed begin/end pairs cost two branches.
  void end(u64 id);
  // Innermost open span id on this thread (the value to propagate across
  // a thread hop), or the ambient parent, or 0.
  static u64 current();
#endif

  // Re-establish `parent` as the ambient parent on this thread for the
  // guard's lifetime (used by kernel workers to adopt the submitter's
  // span across the queue hop). Nestable; restores the previous value.
  class Adopt {
   public:
    explicit Adopt(u64 parent);
    ~Adopt();
    Adopt(const Adopt&) = delete;
    Adopt& operator=(const Adopt&) = delete;

   private:
    u64 prev_ = 0;
  };

  std::size_t size() const;
  std::size_t capacity() const;
  u64 completed() const { return completed_.load(std::memory_order_relaxed); }
  u64 dropped() const { return dropped_.load(std::memory_order_relaxed); }
  u64 max_depth() const { return max_depth_.load(std::memory_order_relaxed); }
  u64 completed_of(SpanKind kind) const {
    return by_kind_[static_cast<std::size_t>(kind)].load(
        std::memory_order_relaxed);
  }

  // Completed spans, oldest first (at most `capacity()` of them).
  std::vector<SpanEvent> events() const;

  // Chrome trace_event fragment: one "ph":"X" object per completed span,
  // comma-separated, no enclosing brackets — ready to splice into
  // Trace::to_chrome_json's traceEvents array. Deterministic given a
  // deterministic span stream.
  std::string chrome_fragment() const;

 private:
  void push(const SpanEvent& e);

  mutable std::mutex mu_;
  std::vector<SpanEvent> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::atomic<u64> next_id_{1};
  std::atomic<u64> completed_{0};
  std::atomic<u64> dropped_{0};
  std::atomic<u64> max_depth_{0};
  std::array<std::atomic<u64>, static_cast<std::size_t>(SpanKind::kCount)>
      by_kind_{};
  std::atomic<bool> armed_{false};
};

// RAII span handle; safe (and free) when the tracer is disarmed.
class SpanScope {
 public:
  SpanScope(SpanKind kind, u64 arg = 0, u16 vmid = 0, u16 asid = 0);
  ~SpanScope();
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  u64 id() const { return id_; }

 private:
  u64 id_ = 0;
};

// The process-wide span tracer every subsystem emits into.
SpanTracer& spans();

// --- Tenant labels -----------------------------------------------------------
// Human-readable names for (VMID, ASID) tenants, attached to span args in
// the Chrome export and appended as a frame in the profiler's collapsed
// stacks. Labels are sanitized for flamegraph.pl on output, not on entry.
void set_domain_label(u16 vmid, u16 asid, std::string_view label);
// Registered label or "" if none.
std::string domain_label(u16 vmid, u16 asid);
void clear_domain_labels();

// Replace characters that corrupt flamegraph.pl frames (`;` separates
// frames, whitespace separates the count) with '_'.
std::string sanitize_frame(std::string_view frame);

}  // namespace lz::obs
