#include "obs/profiler.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "obs/span.h"

namespace lz::obs {

void Profiler::arm(u64 period) {
  period_.store(period, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

void Profiler::record(const SampleKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_samples_;
  if (key.el < el_samples_.size()) ++el_samples_[key.el];
  ++domain_samples_[{key.vmid, key.asid}];
  auto it = samples_map_.find(key);
  if (it != samples_map_.end()) {
    ++it->second;
  } else if (samples_map_.size() < kMaxKeys) {
    samples_map_.emplace(key, 1);
  } else {
    ++dropped_keys_;  // ledgers above still got the sample
  }
}

u64 Profiler::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_samples_;
}

u64 Profiler::dropped_keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_keys_;
}

std::vector<Profiler::DomainSlice> Profiler::by_domain() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DomainSlice> out;
  out.reserve(domain_samples_.size());
  for (const auto& [key, n] : domain_samples_) {
    out.push_back({key.first, key.second, n});
  }
  return out;
}

std::array<u64, 3> Profiler::by_el() const {
  std::lock_guard<std::mutex> lock(mu_);
  return el_samples_;
}

std::vector<std::pair<u64, u64>> Profiler::hotspots(std::size_t top_n) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Aggregate per PC across contexts first.
  std::map<u64, u64> per_pc;
  for (const auto& [key, n] : samples_map_) per_pc[key.pc] += n;
  std::vector<std::pair<u64, u64>> out(per_pc.begin(), per_pc.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (out.size() > top_n) out.resize(top_n);
  return out;
}

std::string Profiler::collapsed() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(samples_map_.size() * 64);
  for (const auto& [key, n] : samples_map_) {
    char buf[128];
    std::snprintf(buf, sizeof buf, "core%u;EL%u;pan%u;vmid%u;asid%u;",
                  key.core, key.el, key.pan, key.vmid, key.asid);
    out += buf;
    // Tenant frame, when one is registered for this (VMID, ASID). The
    // label is user-supplied, so it must not smuggle flamegraph.pl's
    // frame separator (';') or the count separator (whitespace) into the
    // stack line — sanitize_frame maps those to '_'.
    const std::string label = domain_label(key.vmid, key.asid);
    if (!label.empty()) {
      out += sanitize_frame(label);
      out += ';';
    }
    std::snprintf(buf, sizeof buf, "0x%" PRIx64 " %" PRIu64 "\n", key.pc, n);
    out += buf;
  }
  return out;
}

bool Profiler::write_collapsed(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  const std::string text = collapsed();
  f.write(text.data(), static_cast<std::streamsize>(text.size()));
  return static_cast<bool>(f);
}

void Profiler::reset() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    samples_map_.clear();
    domain_samples_.clear();
    el_samples_.fill(0);
    total_samples_ = 0;
    dropped_keys_ = 0;
  }
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

Profiler& profiler() {
  static Profiler p;
  return p;
}

}  // namespace lz::obs
