// lz::obs — cycle-driven sampling profiler with per-domain attribution.
//
// Every N *simulated* cycles of per-core progress the executing core
// captures (core, PC, EL, domain = VMID/ASID of the current translation
// context, PSTATE.PAN). Sampling on simulated time makes profiles exactly
// reproducible: the same workload produces the same samples on every run,
// independent of host speed or thread scheduling.
//
// The profiler is pay-for-what-you-use: cores poll the armed period through
// two relaxed atomic loads at run()/top-level-step boundaries and keep a
// plain bool on their hot path, so a disarmed profiler costs nothing per
// instruction. One sample attributes `period` cycles to its (domain, EL)
// ledger, so summed attributions equal sampled simulated time by
// construction.
//
// Exports: a per-PC hotspot table and per-domain/per-EL cycle ledgers for
// the JSON report, plus a collapsed-stack file (one `frame;frame;... count`
// line per distinct sample context) consumable by standard flamegraph
// tooling (e.g. flamegraph.pl or speedscope).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/types.h"

namespace lz::obs {

struct SampleKey {
  u32 core = 0;
  u8 el = 0;
  u8 pan = 0;
  u16 vmid = 0;
  u16 asid = 0;
  u64 pc = 0;

  auto tie() const { return std::tuple(core, el, pan, vmid, asid, pc); }
  bool operator<(const SampleKey& o) const { return tie() < o.tie(); }
};

class Profiler {
 public:
  static constexpr std::size_t kMaxKeys = 1u << 16;
  static constexpr u64 kDefaultPeriod = 4096;

  // Arm with a sampling period in simulated cycles (0 disarms). Cores pick
  // the change up at their next run()/top-level-step boundary.
  void arm(u64 period);
  void disarm() { arm(0); }
  u64 period() const { return period_.load(std::memory_order_relaxed); }
  bool armed() const { return period() != 0; }
  // Bumped by every arm()/disarm()/reset(); cores use it to cheaply detect
  // configuration changes.
  u64 epoch() const { return epoch_.load(std::memory_order_relaxed); }

  // Record one sample (called by sim::Core when its cycle budget elapses).
  void record(const SampleKey& key);

  u64 samples() const;
  // Distinct sample contexts that could not be stored because the bounded
  // aggregation map was full (their cycles still land in the domain/EL
  // ledgers, so attribution totals stay exact).
  u64 dropped_keys() const;

  struct DomainSlice {
    u16 vmid = 0;
    u16 asid = 0;
    u64 samples = 0;
  };
  std::vector<DomainSlice> by_domain() const;  // sorted by (vmid, asid)
  std::array<u64, 3> by_el() const;            // samples per EL0/EL1/EL2

  // Top-N PCs by sample count (count desc, then PC asc — deterministic).
  std::vector<std::pair<u64, u64>> hotspots(std::size_t top_n) const;

  // Collapsed-stack export: `core<c>;EL<e>;pan<p>;vmid<v>;asid<a>;0x<pc> N`
  // per distinct context, sorted by key. Feed straight into flamegraph.pl.
  std::string collapsed() const;
  bool write_collapsed(const std::string& path) const;

  // Drops all recorded samples; the armed period is preserved.
  void reset();

 private:
  std::atomic<u64> period_{0};
  std::atomic<u64> epoch_{0};

  mutable std::mutex mu_;
  std::map<SampleKey, u64> samples_map_;
  std::map<std::pair<u16, u16>, u64> domain_samples_;
  std::array<u64, 3> el_samples_{};
  u64 total_samples_ = 0;
  u64 dropped_keys_ = 0;
};

// The process-wide profiler (same lifetime model as registry()).
Profiler& profiler();

}  // namespace lz::obs
