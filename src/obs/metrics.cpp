#include "obs/metrics.h"

#include <chrono>

#include "obs/span.h"

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace lz::obs {

const char* to_string(LabelKey key) {
  switch (key) {
    case LabelKey::kTenant:
      return "tenant";
    case LabelKey::kDomain:
      return "domain";
    case LabelKey::kCore:
      return "core";
    case LabelKey::kBackend:
      return "backend";
    case LabelKey::kCount:
      break;
  }
  return "?";
}

LabelSet& LabelSet::set(LabelKey key, std::string_view value) {
  values_[static_cast<std::size_t>(key)] = sanitize_frame(value);
  return *this;
}

LabelSet& LabelSet::set(LabelKey key, u64 value) {
  values_[static_cast<std::size_t>(key)] = std::to_string(value);
  return *this;
}

bool LabelSet::empty() const {
  for (const auto& v : values_)
    if (!v.empty()) return false;
  return true;
}

std::string LabelSet::render() const {
  std::string out;
  for (std::size_t i = 0; i < kNumLabelKeys; ++i) {
    if (values_[i].empty()) continue;
    out += out.empty() ? '{' : ',';
    out += to_string(static_cast<LabelKey>(i));
    out += "=\"";
    out += values_[i];
    out += '"';
  }
  if (!out.empty()) out += '}';
  return out;
}

CounterFamily& MetricsPlane::counter_family(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<CounterFamily>(std::string(name)))
             .first;
  return *it->second;
}

HistogramFamily& MetricsPlane::histogram_family(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<HistogramFamily>(std::string(name)))
             .first;
  return *it->second;
}

std::vector<const CounterFamily*> MetricsPlane::counter_families() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const CounterFamily*> out;
  out.reserve(counters_.size());
  for (const auto& [name, fam] : counters_) out.push_back(fam.get());
  return out;
}

std::vector<const HistogramFamily*> MetricsPlane::histogram_families() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const HistogramFamily*> out;
  out.reserve(histograms_.size());
  for (const auto& [name, fam] : histograms_) out.push_back(fam.get());
  return out;
}

void MetricsPlane::reset() {
  disable();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, fam] : counters_) fam->reset_values();
  for (auto& [name, fam] : histograms_) fam->reset_values();
}

MetricsPlane& metrics() {
  static MetricsPlane plane;
  return plane;
}

const char* to_string(SelfTier tier) {
  switch (tier) {
    case SelfTier::kRun:
      return "run";
    case SelfTier::kTraceExec:
      return "trace_exec";
    case SelfTier::kWalker:
      return "walker";
    case SelfTier::kOracle:
      return "oracle";
    case SelfTier::kObs:
      return "obs";
    case SelfTier::kCount:
      break;
  }
  return "?";
}

u64 host_ticks() {
#if defined(__x86_64__)
  return __rdtsc();
#else
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
#endif
}

void SelfProfiler::reset() {
  disable();
  for (auto& t : ticks_) t.store(0, std::memory_order_relaxed);
}

SelfProfiler& selfprof() {
  static SelfProfiler prof;
  return prof;
}

}  // namespace lz::obs
