// IsolationBackend — the pluggable mechanism seam behind LzProc.
//
// The Table-2 verbs (lz_alloc / lz_free / lz_prot / lz_map_gate_pgt /
// lz_switch_to_ttbr_gate) are a mechanism-neutral contract: carve an
// address space into protection domains, bind domains to call gates, and
// switch between them. LightZone's bet (TTBR0 switching + PAN at EL1) is
// one way to implement that contract; POE/MPK overlay keys, CCA granule
// protection, hardware watchpoints and lwC contexts are rivals. This
// interface lets every mechanism run the same workloads on the same
// calibrated cycle framework, so Table 5 / Fig. 3 comparisons are
// apples-to-apples instead of paper-vs-paper.
//
// Contract (DESIGN.md §14 has the full statement):
//   * Verbs return the same Status/Result vocabulary the LightZone module
//     uses (kNoPgt, kBadRange, kBadGate, kNoGate, kResourceExhausted, …)
//     with identical validation semantics — the ShadowTable2 differential
//     oracle runs unchanged against any backend.
//   * All mechanism costs are charged to the simulated clock through
//     sim::Machine::charge using the *existing* CostKind set; a backend
//     never invents cost kinds or registers counters at static init (both
//     would break the byte-identical golden reports).
//   * TLB interaction is part of the model: a backend that switches
//     domains without TLB maintenance (TTBR+ASID, POE) must not charge
//     kTlbi on the switch path; one that invalidates (key recycling,
//     granule delegation) must.
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "lightzone/module.h"

namespace lz::core {

enum class BackendKind : u8 {
  kTtbrPan,     // the real LightZone module (TTBR0 switch + PAN at EL1)
  kPoe,         // FEAT_S1POE / MPK-style overlay keys (POR_EL0)
  kCca,         // CCA/RME granule protection (GPT delegate + GPC walks)
  kWatchpoint,  // DBGW* debug-register baseline [23]
  kLwc,         // light-weight contexts baseline [31]
};

const char* to_string(BackendKind kind);
// Parses the --backend flag spelling ("ttbr_pan", "poe", "cca",
// "watchpoint", "lwc"); nullopt for anything else.
std::optional<BackendKind> backend_from_string(std::string_view name);

// Mechanism-side tallies a backend may expose for reporting. Plain struct,
// not obs counters: registering counters lazily per backend would leak into
// later scenarios' snapshots in the same binary.
struct BackendStats {
  u64 key_recycles = 0;     // POE: domain switches that had to steal a key
  u64 shootdown_pages = 0;  // POE: pages re-tagged during key recycling
  u64 gpt_walks = 0;        // CCA: granule-protection-check fetches
  u64 delegations = 0;      // CCA: granules delegated via lz_prot
  u64 undelegations = 0;    // CCA: granules released via lz_free
};

class IsolationBackend {
 public:
  virtual ~IsolationBackend() = default;

  virtual BackendKind kind() const = 0;
  std::string_view name() const { return to_string(kind()); }

  // --- Table-2 verbs ----------------------------------------------------------
  virtual Result<int> alloc() = 0;
  virtual Status free_domain(int pgt) = 0;
  virtual Status prot(VirtAddr addr, u64 len, int pgt, u32 perm) = 0;
  virtual Status map_gate_pgt(int pgt, int gate) = 0;
  virtual Status set_gate_entry(int gate, VirtAddr entry) = 0;

  // Switch the calling thread to `gate`'s domain; returns the cycles the
  // switch consumed on the calling core.
  virtual Result<Cycles> switch_to(int gate) = 0;
  // The PAN fast path; mechanisms without an equivalent charge nothing.
  virtual Cycles set_pan(bool pan) = 0;

  // Demand fault-in (setup/warm-up paths) and one 8-byte data access in
  // the current domain (the measured body of the switch benchmarks).
  virtual Status touch(VirtAddr va, bool want_write, bool want_exec) = 0;
  virtual Cycles access(VirtAddr va) = 0;

  // World management for benchmarks that drive switches directly.
  virtual void enter_world() {}
  virtual void exit_world() {}

  virtual int max_domains() const = 0;
  virtual u32 max_gates() const = 0;
  virtual BackendStats stats() const { return {}; }
};

// The reference implementation: forwards every verb to the live LightZone
// kernel module. Pure indirection — a virtual call costs zero simulated
// cycles, so routing LzProc through this class leaves every cycle total
// and golden report byte-identical to the pre-refactor direct calls.
class TtbrPanBackend final : public IsolationBackend {
 public:
  TtbrPanBackend(LzModule& module, LzContext& ctx)
      : module_(&module), ctx_(&ctx) {}

  BackendKind kind() const override { return BackendKind::kTtbrPan; }

  Result<int> alloc() override { return module_->alloc_pgt(*ctx_); }
  Status free_domain(int pgt) override { return module_->free_pgt(*ctx_, pgt); }
  Status prot(VirtAddr addr, u64 len, int pgt, u32 perm) override {
    return module_->prot(*ctx_, addr, len, pgt, perm);
  }
  Status map_gate_pgt(int pgt, int gate) override {
    return module_->map_gate_pgt(*ctx_, pgt, gate);
  }
  Status set_gate_entry(int gate, VirtAddr entry) override {
    return module_->set_gate_entry(*ctx_, gate, entry);
  }
  Result<Cycles> switch_to(int gate) override {
    return module_->exec_gate_switch(*ctx_, gate);
  }
  Cycles set_pan(bool pan) override { return module_->exec_set_pan(*ctx_, pan); }
  Status touch(VirtAddr va, bool want_write, bool want_exec) override {
    return module_->touch_page(*ctx_, va, want_write, want_exec);
  }
  Cycles access(VirtAddr va) override;
  void enter_world() override { module_->enter_world(*ctx_); }
  void exit_world() override { module_->exit_world(*ctx_); }
  int max_domains() const override { return 1 << 16; }
  u32 max_gates() const override { return ctx_->opts().max_gates; }

  LzModule& module() { return *module_; }
  LzContext& ctx() { return *ctx_; }

 private:
  LzModule* module_;
  LzContext* ctx_;
};

}  // namespace lz::core
