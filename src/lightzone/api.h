// User-facing LightZone API (Table 2) and scenario wiring.
//
//   Env       — one evaluation scenario: a simulated SoC (Carmel or
//               Cortex-A55) with one or more cores, a VHE host, optionally
//               a guest VM, and the LightZone module loaded into the host
//               or guest kernel. Built from Env::Options.
//   LzProc    — the API library's view of one process that entered
//               LightZone: lz_alloc / lz_free / lz_prot / lz_map_gate_pgt /
//               lz_switch_to_ttbr_gate / set_pan. Calls report failure
//               through Status/Result (Errc::kNoPgt, kBadRange, kBadGate,
//               kNoGate, …); the `table2` shims below translate to the C
//               int ABI at the library boundary.
//
// `lz_switch_to_ttbr_gate` executes the real TTBR1-mapped call-gate code on
// the simulated core; `set_pan` performs the PAN toggle. Both return the
// cycles consumed, which is what the Table 5 microbenchmark measures.
#pragma once

#include <memory>

#include "lightzone/backend.h"
#include "lightzone/module.h"
#include "obs/counters.h"

namespace lz::core {

struct Env {
  enum class Placement { kHost, kGuest };

  // Scenario builder. Each knob reads as prose at the call site and new
  // knobs never reshuffle an argument list:
  //
  //   Env env(Env::Options()
  //               .platform(arch::Platform::cortex_a55())
  //               .placement(Env::Placement::kGuest)
  //               .cores(4));
  class Options {
   public:
    Options& platform(const arch::Platform& p) {
      platform_ = &p;
      return *this;
    }
    Options& placement(Placement p) {
      placement_ = p;
      return *this;
    }
    Options& seed(u64 s) {
      seed_ = s;
      return *this;
    }
    Options& cores(unsigned n) {
      cores_ = n;
      return *this;
    }
    Options& mem_bytes(u64 b) {
      mem_bytes_ = b;
      return *this;
    }
    // Which IsolationBackend the scenario compares (--backend flag). The
    // Env itself always loads the LightZone module; the backend selection
    // is carried here so benches and the baseline factory agree on it.
    Options& backend(BackendKind b) {
      backend_ = b;
      return *this;
    }

   private:
    friend struct Env;
    const arch::Platform* platform_ = &arch::Platform::cortex_a55();
    Placement placement_ = Placement::kHost;
    u64 seed_ = 42;
    unsigned cores_ = 1;
    u64 mem_bytes_ = u64{4} << 30;
    BackendKind backend_ = BackendKind::kTtbrPan;
  };

  explicit Env(const Options& opts);
  Env() : Env(Options()) {}
  ~Env();

  // The kernel that owns LightZone processes (host kernel or guest kernel).
  kernel::Kernel& kern();

  // Create a process with a conventional layout: code, heap, and stack
  // VMAs (addresses in layout constants below).
  kernel::Process& new_process();

  // Counter scoping: construction snapshots the process-global lz::obs
  // registry, and this returns only what moved since — so back-to-back
  // scenarios in one binary never bleed into each other's reports.
  obs::Snapshot counters_delta() const;

  static constexpr VirtAddr kCodeVa = 0x400000;
  static constexpr u64 kCodeLen = 1 << 20;
  static constexpr VirtAddr kHeapVa = 0x10000000;
  static constexpr u64 kHeapLen = 64ull << 20;
  static constexpr VirtAddr kStackTop = 0x7ff0000000;
  static constexpr u64 kStackLen = 1 << 20;

  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<hv::Host> host;
  std::unique_ptr<hv::GuestVm> vm;  // only for Placement::kGuest
  std::unique_ptr<LzModule> module;
  Placement placement;
  BackendKind backend;

 private:
  obs::Snapshot obs_baseline_;
};

class LzProc {
 public:
  // lz_enter(allow_scalable, insn_san): one-way ticket into the
  // per-process virtual environment (§4.1.1). Always yields the real
  // LightZone mechanism (a TtbrPanBackend over the kernel module).
  static LzProc enter(LzModule& module, kernel::Process& proc,
                      bool allow_scalable, int insn_san,
                      const LzOptions* overrides = nullptr);

  // An LzProc speaking any other IsolationBackend (POE, CCA, Watchpoint,
  // lwC cost models — see baselines/backends.h). Table-2 verbs dispatch
  // identically; the module()/ctx()/proc()/run() surface is TTBR-only.
  explicit LzProc(std::shared_ptr<IsolationBackend> backend)
      : backend_(std::move(backend)) {}

  // --- Table 2 ----------------------------------------------------------------
  // Status-carrying forms, dispatched through the selected backend. Error
  // codes: kNoPgt (pgt id not live), kBadRange (unaligned/empty/overlapping
  // range), kBadGate (gate id out of range), kNoGate (gate not fully
  // registered), kResourceExhausted (table/key space).
  Result<int> lz_alloc() { return backend_->alloc(); }
  Status lz_free(int pgt) { return backend_->free_domain(pgt); }
  Status lz_prot(VirtAddr addr, u64 len, int pgt, u32 perm) {
    return backend_->prot(addr, len, pgt, perm);
  }
  Status lz_map_gate_pgt(int pgt, int gate) {
    return backend_->map_gate_pgt(pgt, gate);
  }
  // Registers the gate's static legal entry (the return point after the
  // lz_switch_to_ttbr_gate macro; fixed before compilation, §6.2).
  Status lz_set_gate_entry(int gate, VirtAddr entry) {
    return backend_->set_gate_entry(gate, entry);
  }

  // Executes the domain switch (the real call-gate instruction sequence on
  // the TTBR backend); returns the cycles consumed on the calling core.
  // With the metrics plane armed, the verb cost lands in the
  // backend-labeled `lz.backend.switch_cycles{backend=,domain=}` family so
  // cross-mechanism sweeps can compare Table-2 costs per backend from one
  // exposition (api.cpp).
  Result<Cycles> lz_switch_to_ttbr_gate(int gate) {
    auto r = backend_->switch_to(gate);
    if (r.is_ok()) record_backend_switch(gate, r.value());
    return r;
  }
  // MSR PAN, #imm.
  Cycles set_pan(bool pan) { return backend_->set_pan(pan); }

  // World management for benchmarks that drive switches directly.
  void enter_world() { backend_->enter_world(); }
  void exit_world() { backend_->exit_world(); }

  sim::RunResult run(u64 max_steps = 10'000'000) {
    return module().run(ctx(), max_steps);
  }

  IsolationBackend& backend() { return *backend_; }
  const IsolationBackend& backend() const { return *backend_; }

  // TTBR-backend-only accessors (the module/context only exist there).
  LzContext& ctx() {
    LZ_CHECK(ctx_ != nullptr);
    return *ctx_;
  }
  const LzContext& ctx() const {
    LZ_CHECK(ctx_ != nullptr);
    return *ctx_;
  }
  LzModule& module() {
    LZ_CHECK(module_ != nullptr);
    return *module_;
  }
  kernel::Process& proc() { return ctx().proc(); }

 private:
  LzProc(std::shared_ptr<IsolationBackend> backend, LzModule& module,
         LzContext& ctx)
      : backend_(std::move(backend)), module_(&module), ctx_(&ctx) {}
  // Out-of-line (api.cpp): one metrics().enabled() load when the plane is
  // off, a labeled-family record when it is on. Keeps obs/metrics.h out of
  // this header's include fan-out.
  void record_backend_switch(int gate, Cycles delta);
  std::shared_ptr<IsolationBackend> backend_;
  LzModule* module_ = nullptr;  // non-null only for the TTBR+PAN backend
  LzContext* ctx_ = nullptr;
};

// --- Table-2 C boundary ------------------------------------------------------
// Thin int shims with the exact Table-2 signature: 0 / pgt-id on success,
// a negative errno on failure (the same values the kernel module returns
// through the forwarded-SVC path). New code should call the Status API on
// LzProc directly; these exist for the C ABI only.
//
// Every shim funnels through one Status→int mapping (`errno_of` via
// `to_c_int` below), so the translation cannot drift between verbs:
//
//   Errc                                  C return   errno
//   ------------------------------------  ---------  --------
//   kOk                                    0 / id     —
//   kResourceExhausted                     -12        ENOMEM
//   kPermissionDenied, kFailedPrecondition -1         EPERM
//   kNotFound                              -2         ENOENT
//   kNoPgt, kBadRange, kBadGate, kNoGate,
//   kInvalidArgument, everything else      -22        EINVAL
namespace table2 {

// Errc -> -errno translation used by every shim.
int errno_of(const Status& s);

// The single Status→int helper all five verbs share: a Status maps to its
// errno; a Result<int> additionally carries the id on success.
inline int to_c_int(const Status& s) { return errno_of(s); }
inline int to_c_int(const Result<int>& r) {
  return r.is_ok() ? *r : errno_of(r.status());
}

int lz_alloc(LzProc& p);  // >= 0 pgt id, or -errno
int lz_free(LzProc& p, int pgt);
int lz_prot(LzProc& p, VirtAddr addr, u64 len, int pgt, u32 perm);
int lz_map_gate_pgt(LzProc& p, int pgt, int gate);
int lz_set_gate_entry(LzProc& p, int gate, VirtAddr entry);

}  // namespace table2

}  // namespace lz::core
