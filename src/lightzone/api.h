// User-facing LightZone API (Table 2) and scenario wiring.
//
//   Env       — one evaluation scenario: a simulated SoC (Carmel or
//               Cortex-A55) with one or more cores, a VHE host, optionally
//               a guest VM, and the LightZone module loaded into the host
//               or guest kernel. Built from Env::Options.
//   LzProc    — the API library's view of one process that entered
//               LightZone: lz_alloc / lz_free / lz_prot / lz_map_gate_pgt /
//               lz_switch_to_ttbr_gate / set_pan. Calls report failure
//               through Status/Result (Errc::kNoPgt, kBadRange, kBadGate,
//               kNoGate, …); the `table2` shims below translate to the C
//               int ABI at the library boundary.
//
// `lz_switch_to_ttbr_gate` executes the real TTBR1-mapped call-gate code on
// the simulated core; `set_pan` performs the PAN toggle. Both return the
// cycles consumed, which is what the Table 5 microbenchmark measures.
#pragma once

#include <memory>

#include "lightzone/module.h"
#include "obs/counters.h"

namespace lz::core {

struct Env {
  enum class Placement { kHost, kGuest };

  // Scenario builder. Each knob reads as prose at the call site and new
  // knobs never reshuffle an argument list:
  //
  //   Env env(Env::Options()
  //               .platform(arch::Platform::cortex_a55())
  //               .placement(Env::Placement::kGuest)
  //               .cores(4));
  class Options {
   public:
    Options& platform(const arch::Platform& p) {
      platform_ = &p;
      return *this;
    }
    Options& placement(Placement p) {
      placement_ = p;
      return *this;
    }
    Options& seed(u64 s) {
      seed_ = s;
      return *this;
    }
    Options& cores(unsigned n) {
      cores_ = n;
      return *this;
    }
    Options& mem_bytes(u64 b) {
      mem_bytes_ = b;
      return *this;
    }

   private:
    friend struct Env;
    const arch::Platform* platform_ = &arch::Platform::cortex_a55();
    Placement placement_ = Placement::kHost;
    u64 seed_ = 42;
    unsigned cores_ = 1;
    u64 mem_bytes_ = u64{4} << 30;
  };

  explicit Env(const Options& opts);
  Env() : Env(Options()) {}
  ~Env();

  // The kernel that owns LightZone processes (host kernel or guest kernel).
  kernel::Kernel& kern();

  // Create a process with a conventional layout: code, heap, and stack
  // VMAs (addresses in layout constants below).
  kernel::Process& new_process();

  // Counter scoping: construction snapshots the process-global lz::obs
  // registry, and this returns only what moved since — so back-to-back
  // scenarios in one binary never bleed into each other's reports.
  obs::Snapshot counters_delta() const;

  static constexpr VirtAddr kCodeVa = 0x400000;
  static constexpr u64 kCodeLen = 1 << 20;
  static constexpr VirtAddr kHeapVa = 0x10000000;
  static constexpr u64 kHeapLen = 64ull << 20;
  static constexpr VirtAddr kStackTop = 0x7ff0000000;
  static constexpr u64 kStackLen = 1 << 20;

  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<hv::Host> host;
  std::unique_ptr<hv::GuestVm> vm;  // only for Placement::kGuest
  std::unique_ptr<LzModule> module;
  Placement placement;

 private:
  obs::Snapshot obs_baseline_;
};

class LzProc {
 public:
  // lz_enter(allow_scalable, insn_san): one-way ticket into the
  // per-process virtual environment (§4.1.1).
  static LzProc enter(LzModule& module, kernel::Process& proc,
                      bool allow_scalable, int insn_san,
                      const LzOptions* overrides = nullptr);

  // --- Table 2 ----------------------------------------------------------------
  // Status-carrying forms. Error codes: kNoPgt (pgt id not live), kBadRange
  // (unaligned/empty/overlapping range), kBadGate (gate id out of range),
  // kNoGate (gate not fully registered), kResourceExhausted (table space).
  Result<int> lz_alloc() { return module_->alloc_pgt(*ctx_); }
  Status lz_free(int pgt) { return module_->free_pgt(*ctx_, pgt); }
  Status lz_prot(VirtAddr addr, u64 len, int pgt, u32 perm) {
    return module_->prot(*ctx_, addr, len, pgt, perm);
  }
  Status lz_map_gate_pgt(int pgt, int gate) {
    return module_->map_gate_pgt(*ctx_, pgt, gate);
  }
  // Registers the gate's static legal entry (the return point after the
  // lz_switch_to_ttbr_gate macro; fixed before compilation, §6.2).
  Status lz_set_gate_entry(int gate, VirtAddr entry) {
    return module_->set_gate_entry(*ctx_, gate, entry);
  }

  // Executes the real call-gate instruction sequence; returns the cycles
  // consumed on the calling core.
  Result<Cycles> lz_switch_to_ttbr_gate(int gate) {
    return module_->exec_gate_switch(*ctx_, gate);
  }
  // MSR PAN, #imm.
  Cycles set_pan(bool pan) { return module_->exec_set_pan(*ctx_, pan); }

  // World management for benchmarks that drive switches directly.
  void enter_world() { module_->enter_world(*ctx_); }
  void exit_world() { module_->exit_world(*ctx_); }

  sim::RunResult run(u64 max_steps = 10'000'000) {
    return module_->run(*ctx_, max_steps);
  }

  LzContext& ctx() { return *ctx_; }
  const LzContext& ctx() const { return *ctx_; }
  LzModule& module() { return *module_; }
  kernel::Process& proc() { return ctx_->proc(); }

 private:
  LzProc(LzModule& module, LzContext& ctx) : module_(&module), ctx_(&ctx) {}
  LzModule* module_;
  LzContext* ctx_;
};

// --- Table-2 C boundary ------------------------------------------------------
// Thin int shims with the exact Table-2 signature: 0 / pgt-id on success,
// a negative errno on failure (the same values the kernel module returns
// through the forwarded-SVC path). New code should call the Status API on
// LzProc directly; these exist for the C ABI only.
namespace table2 {

// Errc -> -errno translation used by every shim.
int errno_of(const Status& s);

int lz_alloc(LzProc& p);  // >= 0 pgt id, or -errno
int lz_free(LzProc& p, int pgt);
int lz_prot(LzProc& p, VirtAddr addr, u64 len, int pgt, u32 perm);
int lz_map_gate_pgt(LzProc& p, int pgt, int gate);
int lz_set_gate_entry(LzProc& p, int gate, VirtAddr entry);

}  // namespace table2

}  // namespace lz::core
