// User-facing LightZone API (Table 2) and scenario wiring.
//
//   Env       — one evaluation scenario: a simulated SoC (Carmel or
//               Cortex-A55), a VHE host, optionally a guest VM, and the
//               LightZone module loaded into the host or guest kernel.
//   LzProc    — the API library's view of one process that entered
//               LightZone: lz_alloc / lz_free / lz_prot / lz_map_gate_pgt /
//               lz_switch_to_ttbr_gate / set_pan.
//
// `lz_switch_to_ttbr_gate` executes the real TTBR1-mapped call-gate code on
// the simulated core; `set_pan` performs the PAN toggle. Both return the
// cycles consumed, which is what the Table 5 microbenchmark measures.
#pragma once

#include <memory>

#include "lightzone/module.h"

namespace lz::core {

struct Env {
  enum class Placement { kHost, kGuest };

  Env(const arch::Platform& platform, Placement placement, u64 seed = 42);
  ~Env();

  // The kernel that owns LightZone processes (host kernel or guest kernel).
  kernel::Kernel& kern();

  // Create a process with a conventional layout: code, heap, and stack
  // VMAs (addresses in layout constants below).
  kernel::Process& new_process();

  static constexpr VirtAddr kCodeVa = 0x400000;
  static constexpr u64 kCodeLen = 1 << 20;
  static constexpr VirtAddr kHeapVa = 0x10000000;
  static constexpr u64 kHeapLen = 64ull << 20;
  static constexpr VirtAddr kStackTop = 0x7ff0000000;
  static constexpr u64 kStackLen = 1 << 20;

  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<hv::Host> host;
  std::unique_ptr<hv::GuestVm> vm;  // only for Placement::kGuest
  std::unique_ptr<LzModule> module;
  Placement placement;
};

class LzProc {
 public:
  // lz_enter(allow_scalable, insn_san): one-way ticket into the
  // per-process virtual environment (§4.1.1).
  static LzProc enter(LzModule& module, kernel::Process& proc,
                      bool allow_scalable, int insn_san,
                      const LzOptions* overrides = nullptr);

  // --- Table 2 ----------------------------------------------------------------
  int lz_alloc() { return module_->alloc_pgt(*ctx_); }
  int lz_free(int pgt) { return module_->free_pgt(*ctx_, pgt).is_ok() ? 0 : -1; }
  int lz_prot(VirtAddr addr, u64 len, int pgt, u32 perm) {
    return module_->prot(*ctx_, addr, len, pgt, perm).is_ok() ? 0 : -1;
  }
  int lz_map_gate_pgt(int pgt, int gate) {
    return module_->map_gate_pgt(*ctx_, pgt, gate).is_ok() ? 0 : -1;
  }
  // Registers the gate's static legal entry (the return point after the
  // lz_switch_to_ttbr_gate macro; fixed before compilation, §6.2).
  int lz_set_gate_entry(int gate, VirtAddr entry) {
    return module_->set_gate_entry(*ctx_, gate, entry).is_ok() ? 0 : -1;
  }

  // Executes the real call-gate instruction sequence; returns cycles.
  Cycles lz_switch_to_ttbr_gate(int gate) {
    return module_->exec_gate_switch(*ctx_, gate);
  }
  // MSR PAN, #imm.
  Cycles set_pan(bool pan) { return module_->exec_set_pan(*ctx_, pan); }

  // World management for benchmarks that drive switches directly.
  void enter_world() { module_->enter_world(*ctx_); }
  void exit_world() { module_->exit_world(*ctx_); }

  sim::RunResult run(u64 max_steps = 10'000'000) {
    return module_->run(*ctx_, max_steps);
  }

  LzContext& ctx() { return *ctx_; }
  const LzContext& ctx() const { return *ctx_; }
  LzModule& module() { return *module_; }
  kernel::Process& proc() { return ctx_->proc(); }

 private:
  LzProc(LzModule& module, LzContext& ctx) : module_(&module), ctx_(&ctx) {}
  LzModule* module_;
  LzContext* ctx_;
};

}  // namespace lz::core
