#include "lightzone/module.h"

#include <optional>
#include <span>

#include "obs/counters.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace lz::core {

using arch::ExceptionClass;
using arch::ExceptionLevel;
using sim::CostKind;
using sim::SysReg;
using sim::TrapAction;
using sim::TrapInfo;

namespace {

// Registers moved by one direction of the nested EL1 context switch. The
// guest kernel and the LightZone process multiplex the *same* physical EL1
// register file, so each hop swaps the full EL1 context (but, unlike a
// conventional nested VM switch, not FP/SIMD, GIC or timer state — those
// are shared, §5.2.2).
constexpr std::size_t kNestedEl1Ctx = 20;
// Guest-kernel-module accesses served from the NEVE-style deferred page
// during one trap (instead of trapping to the Lowvisor each time).
constexpr std::size_t kDeferredAccesses = 6;

LzContext* ctx_of(kernel::Process& proc) {
  return dynamic_cast<LzContext*>(proc.extension());
}

// Unmap `va` from `tbl`, tolerating only "not mapped": a page may
// legitimately be absent from a sibling domain table, but any other unmap
// failure means a live translation could not be retired — callers must
// abort their transition rather than proceed with a stale alias.
Status unmap_if_mapped(mem::Stage1Table& tbl, VirtAddr va) {
  const Status s = tbl.unmap(va);
  if (s.is_ok() || s.errc() == Errc::kNotFound) return Status::ok();
  return s;
}

// LightZone-module events (`lz.module.*`).
struct LzCounters {
  obs::Counter& gate_switch = obs::registry().counter("lz.module.gate_switch");
  obs::Counter& pan_toggle = obs::registry().counter("lz.module.pan_toggle");
  obs::Counter& hvc_forward = obs::registry().counter("lz.module.hvc_forward");
  obs::Counter& s1_fault = obs::registry().counter("lz.module.s1_fault");
  obs::Counter& s2_fault = obs::registry().counter("lz.module.s2_fault");
  obs::Counter& sanitize_pass =
      obs::registry().counter("lz.module.sanitize_pass");
  obs::Counter& sanitize_fail =
      obs::registry().counter("lz.module.sanitize_fail");
  obs::Counter& killed = obs::registry().counter("lz.module.killed");
  obs::Counter& world_enter = obs::registry().counter("lz.module.world_enter");
  obs::Counter& world_exit = obs::registry().counter("lz.module.world_exit");
};

LzCounters& lz_counters() {
  static LzCounters c;
  return c;
}

// Latency histograms (obs::Histogram, DESIGN.md §12): simulated-cycle
// distributions of the module's four headline operations. Recording is
// observe-only — it never charges the account — so always-on recording
// cannot perturb cycle totals or v1 report byte-identity.
struct LzHists {
  obs::Histogram& gate_switch =
      obs::histograms().histogram("lz.gate.switch_cycles");
  obs::Histogram& pan_switch =
      obs::histograms().histogram("lz.pan.switch_cycles");
  obs::Histogram& hvc_forward =
      obs::histograms().histogram("lz.hvc.forward_cycles");
  obs::Histogram& world_switch =
      obs::histograms().histogram("lz.world.switch_cycles");
};

LzHists& lz_hists() {
  static LzHists h;
  return h;
}

// Labeled switch-latency families (metrics plane, DESIGN.md §17): the same
// deltas the flat histograms record, keyed per tenant (the registered
// domain label, falling back to "vmid<v>") and — for gate switches — per
// domain (the target ASID). Everything below is guarded by
// metrics().enabled(), so the flagless path pays one relaxed load and the
// per-tenant families never even register.
struct LzMetricFamilies {
  obs::HistogramFamily& gate =
      obs::metrics().histogram_family("lz.tenant.gate_switch_cycles");
  obs::HistogramFamily& pan =
      obs::metrics().histogram_family("lz.tenant.pan_switch_cycles");
  obs::HistogramFamily& world =
      obs::metrics().histogram_family("lz.tenant.world_switch_cycles");
  obs::HistogramFamily& hvc =
      obs::metrics().histogram_family("lz.tenant.hvc_forward_cycles");
};

LzMetricFamilies& lz_metric_families() {
  static LzMetricFamilies f;
  return f;
}

std::string tenant_label(u16 vmid, u16 asid) {
  std::string label = obs::domain_label(vmid, asid);
  if (label.empty() && asid != 0) label = obs::domain_label(vmid, 0);
  if (label.empty()) label = "vmid" + std::to_string(vmid);
  return label;
}

void record_tenant_switch(obs::HistogramFamily& family, u16 vmid, u16 asid,
                          bool with_domain, Cycles delta) {
  obs::LabelSet labels;
  labels.set(obs::LabelKey::kTenant, tenant_label(vmid, asid));
  if (with_domain) labels.set(obs::LabelKey::kDomain, u64{asid});
  family.with(labels).record(delta);
}

}  // namespace

// --- LzContext ---------------------------------------------------------------

LzContext::LzContext(LzModule& module, kernel::Process& proc,
                     const LzOptions& opts)
    : module_(module), proc_(proc), opts_(opts) {
  vmid = module.host().alloc_vmid();
  stage2 = std::make_unique<mem::Stage2Table>(module.machine().mem(), vmid);
  gates.resize(opts_.max_gates);
}

LzContext::~LzContext() = default;

IntermAddr LzContext::ipa_of(PhysAddr real) {
  if (opts_.allow_scalable && opts_.fake_phys) {
    return fake.fake_of(page_floor(real)) | page_offset(real);
  }
  return real;
}

PhysAddr LzContext::pa_of(IntermAddr ipa) const {
  if (opts_.allow_scalable && opts_.fake_phys) {
    const auto real = fake.real_of(ipa);
    LZ_CHECK(real.has_value());
    return *real;
  }
  return ipa;
}

mem::FrameOps LzContext::table_frame_ops() {
  LzContext* cp = this;
  auto& kern = module_.kern();
  return mem::FrameOps{
      [cp, &kern] {
        // Table frames are kernel memory: stage-2 maps them read-only at
        // their fake address so the process can never edit its own
        // translations (§5.1.2), while the hardware walker can still
        // follow them.
        const PhysAddr pa = kern.alloc_frame();
        LZ_CHECK_OK(cp->stage2->map(cp->ipa_of(pa), pa,
                                    mem::S2Attrs{true, true, false, false}));
        return pa;
      },
      [cp, &kern](PhysAddr pa) {
        // Every table frame was stage-2-mapped at alloc, so the unmap can
        // only fail if the tables desynchronised — fail loudly, a silent
        // skip would leave the dead frame reachable read-only forever.
        LZ_CHECK_OK(cp->stage2->unmap(cp->ipa_of(pa)));
        kern.free_frame(pa);
      },
      [cp](PhysAddr pa) { return cp->ipa_of(pa); },
      [cp](u64 ipa) { return cp->pa_of(ipa); }};
}

u64 LzContext::isolation_table_pages() const {
  u64 total = stage2->table_pages();
  for (const auto& d : pgts) {
    if (d.tbl) total += d.tbl->table_pages();
  }
  if (upper) total += upper->table_pages();
  total += 1 /*gatetab*/ + ttbrtab_pages.size();
  return total;
}

// --- LzModule ----------------------------------------------------------------

LzModule::LzModule(hv::Host& host)
    : host_(host), world_(host.machine().num_cores()) {
  register_api_syscalls();
}

LzModule::LzModule(hv::Host& host, hv::GuestVm& vm)
    : host_(host), vm_(&vm), world_(host.machine().num_cores()) {
  register_api_syscalls();
}

void LzModule::register_api_syscalls() {
  auto& k = kern();
  k.register_syscall(lznr::kAlloc,
                     [this](kernel::Process& p, const kernel::SyscallArgs&)
                         -> u64 {
    auto* ctx = ctx_of(p);
    if (ctx == nullptr) return kernel::kEperm;
    const auto pgt = alloc_pgt(*ctx);
    return pgt.is_ok() ? static_cast<u64>(*pgt) : kernel::kEnomem;
  });
  k.register_syscall(lznr::kFree,
                     [this](kernel::Process& p,
                            const kernel::SyscallArgs& a) -> u64 {
    auto* ctx = ctx_of(p);
    if (ctx == nullptr) return kernel::kEperm;
    return free_pgt(*ctx, static_cast<int>(a.a[0])).is_ok() ? 0
                                                            : kernel::kEinval;
  });
  k.register_syscall(lznr::kProt,
                     [this](kernel::Process& p,
                            const kernel::SyscallArgs& a) -> u64 {
    auto* ctx = ctx_of(p);
    if (ctx == nullptr) return kernel::kEperm;
    return prot(*ctx, a.a[0], a.a[1], static_cast<int>(static_cast<i64>(a.a[2])),
                static_cast<u32>(a.a[3]))
                   .is_ok()
               ? 0
               : kernel::kEinval;
  });
  k.register_syscall(lznr::kMapGatePgt,
                     [this](kernel::Process& p,
                            const kernel::SyscallArgs& a) -> u64 {
    auto* ctx = ctx_of(p);
    if (ctx == nullptr) return kernel::kEperm;
    return map_gate_pgt(*ctx, static_cast<int>(a.a[0]),
                        static_cast<int>(a.a[1]))
                   .is_ok()
               ? 0
               : kernel::kEinval;
  });
  k.register_syscall(lznr::kSetGateEntry,
                     [this](kernel::Process& p,
                            const kernel::SyscallArgs& a) -> u64 {
    auto* ctx = ctx_of(p);
    if (ctx == nullptr) return kernel::kEperm;
    return set_gate_entry(*ctx, static_cast<int>(a.a[0]), a.a[1]).is_ok()
               ? 0
               : kernel::kEinval;
  });
}

LzModule::~LzModule() = default;

kernel::Kernel& LzModule::kern() {
  return nested() ? vm_->kern() : host_.kern();
}

u64 LzModule::lz_hcr(const LzContext& ctx) const {
  u64 hcr = arch::hcr::kVm | arch::hcr::kRw | arch::hcr::kTsc |
            arch::hcr::kTtlb | arch::hcr::kImo | arch::hcr::kFmo;
  if (!ctx.opts().allow_scalable) {
    // PAN-only processes may never touch stage-1 controls (§5.1.2); for
    // scalable processes TTBR0 updates must stay untrapped for the gate.
    hcr |= arch::hcr::kTvm | arch::hcr::kTrvm;
  }
  return hcr;
}

LzContext& LzModule::enter(kernel::Process& proc, const LzOptions& opts) {
  LZ_CHECK(proc.extension() == nullptr);
  auto owned = std::make_unique<LzContext>(*this, proc, opts);
  LzContext& ctx = *owned;
  proc.set_extension(std::move(owned));

  build_upper_half(ctx);

  // pgt 0 is the default domain table every process starts in.
  const auto pgt0 = alloc_pgt(ctx);
  LZ_CHECK(pgt0.is_ok() && *pgt0 == 0);

  if (!opts.allow_scalable) duplicate_kernel_table(ctx);

  // The process keeps its registers, PC and stack but now executes at EL1
  // with PAN enabled ("one-way ticket", Table 2).
  ctx.ctx = proc.ctx();
  arch::PState st;
  st.el = ExceptionLevel::kEl1;
  st.pan = true;
  st.sp_sel = true;
  ctx.ctx.spsr = st.to_spsr();
  ctx.ctx.ttbr0 = domain_ttbr(ctx, 0);
  ctx.ctx.ttbr1 = mem::make_ttbr(ctx.ipa_of(ctx.upper->root()), 0);
  ctx.ctx.vbar = UpperLayout::kStubVa;

  // Keep LightZone translations coherent with kernel-managed unmaps.
  kern().on_unmap = [this](kernel::Process& p, VirtAddr va) {
    if (auto* c = ctx_of(p)) sync_unmap(*c, va);
  };
  return ctx;
}

Result<int> LzModule::alloc_pgt(LzContext& ctx) {
  if (!ctx.opts().allow_scalable && !ctx.pgts.empty()) {
    // PAN-only processes have exactly one table.
    return err(Errc::kFailedPrecondition,
               "lz_alloc: PAN-only process already has its table");
  }
  // Find a free slot or append.
  std::size_t id = ctx.pgts.size();
  for (std::size_t i = 0; i < ctx.pgts.size(); ++i) {
    if (!ctx.pgts[i].in_use) {
      id = i;
      break;
    }
  }
  if (id >= (u64{1} << 16)) {  // 2^16 domain tables max (ASID width)
    return err(Errc::kResourceExhausted, "lz_alloc: out of domain tables");
  }
  if (id == ctx.pgts.size()) ctx.pgts.emplace_back();

  auto& slot = ctx.pgts[id];
  const u16 asid = ctx.next_asid++;
  slot.tbl = std::make_unique<mem::Stage1Table>(machine().mem(), asid,
                                                ctx.table_frame_ops());
  // Tag the table with the stage-2 regime it runs under, so the BBM
  // write-protocol oracle can match broadcast TLBI scopes against it.
  slot.tbl->set_vmid(ctx.vmid);
  slot.in_use = true;

  // Copy already-resident unprotected pages so switching into this table
  // does not fault on code/stack that every domain shares.
  for (const auto& [vpage, page] : ctx.pages) {
    if (page.is_protected) continue;
    const VirtAddr va = vpage << kPageShift;
    (void)fault_in_page(ctx, va, /*want_write=*/false, /*want_exec=*/false);
  }

  write_ttbrtab(ctx, static_cast<int>(id), domain_ttbr(ctx, static_cast<int>(id)));
  return static_cast<int>(id);
}

Status LzModule::free_pgt(LzContext& ctx, int pgt) {
  if (pgt <= 0 || static_cast<std::size_t>(pgt) >= ctx.pgts.size() ||
      !ctx.pgts[pgt].in_use) {
    return err(Errc::kNoPgt, "lz_free: bad pgt id");
  }
  // Break-before-make: retire the TTBRTab slot, broadcast the invalidation
  // to every core, and only then release the table frames. Another core may
  // be executing in this process's VM with the stale translation cached.
  write_ttbrtab(ctx, pgt, 0);

  // Dissolve the dead domain's memory grants before the table goes away.
  // Regions must never name a freed table: fault_in_page attaches pages
  // through ctx.pgts[region.pgt].tbl, so a surviving region would make the
  // next fault on its range walk a released Stage1Table. The ranges revert
  // to whatever still covers them (surviving overlapping regions, or the
  // default unprotected global mapping); resident pages are detached now
  // and re-faulted below, the same eager re-apply discipline prot() uses.
  std::vector<VirtAddr> refault;
  for (std::size_t i = 0; i < ctx.regions.size();) {
    const auto& region = ctx.regions[i];
    if (region.pgt != pgt) {
      ++i;
      continue;
    }
    for (VirtAddr va = region.start; va < region.end; va += kPageSize) {
      auto it = ctx.pages.find(page_index(va));
      if (it == ctx.pages.end()) continue;
      for (auto& d : ctx.pgts) {
        if (d.in_use) LZ_RETURN_IF_ERROR(unmap_if_mapped(*d.tbl, va));
      }
      refault.push_back(va);
    }
    ctx.regions.erase(ctx.regions.begin() + static_cast<std::ptrdiff_t>(i));
  }

  // Releasing the table also retires each table frame's read-only stage-2
  // mapping (table_frame_ops), so the broadcast must come *after* it: one
  // VMID-scoped invalidation then covers the stage-1 detaches above and
  // the stage-2 teardown alike, before any frame or fake address can be
  // recycled by the next lz_alloc with different rights.
  ctx.pgts[pgt].tbl.reset();
  ctx.pgts[pgt].in_use = false;
  machine().tlbi_vmid_is(ctx.vmid);
  for (const VirtAddr va : refault) {
    LZ_RETURN_IF_ERROR(fault_in_page(ctx, va, false, false));
  }
  return Status::ok();
}

u64 LzModule::domain_ttbr(LzContext& ctx, int pgt_id) {
  auto& d = ctx.pgts[pgt_id];
  LZ_CHECK(d.in_use);
  return mem::make_ttbr(ctx.ipa_of(d.tbl->root()), d.tbl->asid());
}

Status LzModule::prot(LzContext& ctx, VirtAddr addr, u64 len, int pgt,
                      u32 perm) {
  if (!page_aligned(addr) || len == 0) {
    return err(Errc::kBadRange, "lz_prot: unaligned or empty region");
  }
  if (pgt != kPgtAll &&
      (pgt < 0 || static_cast<std::size_t>(pgt) >= ctx.pgts.size() ||
       !ctx.pgts[pgt].in_use)) {
    return err(Errc::kNoPgt, "lz_prot: bad pgt id");
  }
  const VirtAddr end = addr + page_ceil(len);
  // A range already claimed by a *different* specific domain cannot be
  // re-claimed: that would silently merge two isolation domains. (Repeated
  // grants to the same table and kPgtAll overlays stay legal.)
  for (const auto& region : ctx.regions) {
    if (addr >= region.end || end <= region.start) continue;
    if (region.pgt != kPgtAll && pgt != kPgtAll && region.pgt != pgt) {
      return err(Errc::kBadRange,
                 "lz_prot: range overlaps a different domain's region");
    }
  }
  ctx.regions.push_back(LzContext::ProtRegion{addr, end, pgt, perm});

  // Re-apply protection to already-resident pages: detach from all tables,
  // broadcast the invalidation (another core may run a sibling domain of
  // this process), then fault the new attachment in.
  for (VirtAddr va = addr; va < end; va += kPageSize) {
    auto it = ctx.pages.find(page_index(va));
    if (it == ctx.pages.end()) continue;
    it->second.is_protected = true;
    for (auto& d : ctx.pgts) {
      if (d.in_use) LZ_RETURN_IF_ERROR(unmap_if_mapped(*d.tbl, va));
    }
    machine().tlbi_va_all_asid_is(page_index(va), ctx.vmid);
    LZ_RETURN_IF_ERROR(fault_in_page(ctx, va, false, false));
  }
  return Status::ok();
}

Status LzModule::map_gate_pgt(LzContext& ctx, int pgt, int gate) {
  if (gate < 0 || static_cast<u32>(gate) >= ctx.opts().max_gates) {
    return err(Errc::kBadGate, "lz_map_gate_pgt: bad gate id");
  }
  if (pgt < 0 || static_cast<std::size_t>(pgt) >= ctx.pgts.size() ||
      !ctx.pgts[pgt].in_use) {
    return err(Errc::kNoPgt, "lz_map_gate_pgt: bad pgt id");
  }
  ctx.gates[gate].pgt = pgt;
  write_gatetab(ctx, gate);
  return Status::ok();
}

Status LzModule::set_gate_entry(LzContext& ctx, int gate, VirtAddr entry) {
  if (gate < 0 || static_cast<u32>(gate) >= ctx.opts().max_gates) {
    return err(Errc::kBadGate, "lz_set_gate_entry: bad gate id");
  }
  ctx.gates[gate].entry = entry;
  write_gatetab(ctx, gate);
  return Status::ok();
}

// --- Upper half --------------------------------------------------------------

void LzModule::build_upper_half(LzContext& ctx) {
  auto& pm = machine().mem();
  ctx.upper = std::make_unique<mem::Stage1Table>(pm, /*asid=*/0,
                                                 ctx.table_frame_ops());
  ctx.upper->set_vmid(ctx.vmid);

  const mem::S1Attrs code_attrs{/*valid=*/true, /*user=*/false,
                                /*read_only=*/true, /*uxn=*/true,
                                /*pxn=*/false, /*global=*/true, /*af=*/true};
  const mem::S1Attrs data_attrs{/*valid=*/true, /*user=*/false,
                                /*read_only=*/true, /*uxn=*/true,
                                /*pxn=*/true, /*global=*/true, /*af=*/true};
  const mem::S2Attrs s2_code{true, true, false, true};
  const mem::S2Attrs s2_data{true, true, false, false};

  // Forwarding stub (EL1 vector page of the API library).
  {
    const PhysAddr frame = kern().alloc_frame();
    build_stub_page().install(pm, frame);
    LZ_CHECK_OK(ctx.upper->map(UpperLayout::kStubVa, ctx.ipa_of(frame),
                               code_attrs));
    LZ_CHECK_OK(ctx.stage2->map(ctx.ipa_of(frame), frame, s2_code));
  }

  // Call-gate code pages.
  const u64 gate_bytes = u64{ctx.opts().max_gates} * UpperLayout::kGateStride;
  const u64 gate_pages = page_ceil(gate_bytes) / kPageSize;
  std::vector<PhysAddr> gate_frames(gate_pages);
  for (u64 i = 0; i < gate_pages; ++i) {
    gate_frames[i] = kern().alloc_frame();
    LZ_CHECK_OK(ctx.upper->map(UpperLayout::kGateCodeVa + i * kPageSize,
                               ctx.ipa_of(gate_frames[i]), code_attrs));
    LZ_CHECK_OK(ctx.stage2->map(ctx.ipa_of(gate_frames[i]), gate_frames[i],
                                s2_code));
  }
  for (u32 g = 0; g < ctx.opts().max_gates; ++g) {
    auto code = build_gate_code(g, ctx.opts().max_gates);
    const u64 off = u64{g} * UpperLayout::kGateStride;
    code.install(pm, gate_frames[off / kPageSize] + page_offset(off));
  }

  // GateTab (one frame holds 256 {ENTRY, PGTID} pairs).
  LZ_CHECK(ctx.opts().max_gates * 16 <= kPageSize);
  ctx.gatetab_pa = kern().alloc_frame();
  LZ_CHECK_OK(ctx.upper->map(UpperLayout::kGateTabVa, ctx.ipa_of(ctx.gatetab_pa),
                             data_attrs));
  LZ_CHECK_OK(ctx.stage2->map(ctx.ipa_of(ctx.gatetab_pa), ctx.gatetab_pa,
                              s2_data));
}

void LzModule::write_ttbrtab(LzContext& ctx, int pgt_id, u64 ttbr_value) {
  const u64 page_idx = static_cast<u64>(pgt_id) / 512;  // 512 u64s per page
  while (ctx.ttbrtab_pages.size() <= page_idx) {
    const u64 i = ctx.ttbrtab_pages.size();
    const PhysAddr frame = kern().alloc_frame();
    ctx.ttbrtab_pages.push_back(frame);
    const mem::S1Attrs data_attrs{true, false, true, true, true, true, true};
    LZ_CHECK_OK(ctx.upper->map(UpperLayout::kTtbrTabVa + i * kPageSize,
                               ctx.ipa_of(frame), data_attrs));
    LZ_CHECK_OK(ctx.stage2->map(ctx.ipa_of(frame), frame,
                                mem::S2Attrs{true, true, false, false}));
  }
  const PhysAddr frame = ctx.ttbrtab_pages[page_idx];
  machine().mem().write(frame + (pgt_id % 512) * 8, 8, ttbr_value);
}

void LzModule::write_gatetab(LzContext& ctx, int gate_id) {
  const auto& g = ctx.gates[gate_id];
  machine().mem().write(ctx.gatetab_pa + u64{static_cast<u32>(gate_id)} * 16,
                        8, g.entry);
  machine().mem().write(
      ctx.gatetab_pa + u64{static_cast<u32>(gate_id)} * 16 + 8, 8,
      g.pgt < 0 ? 0 : static_cast<u64>(g.pgt));
}

// --- Paging ------------------------------------------------------------------

bool LzModule::sanitize_page(LzContext& ctx, PhysAddr frame) {
  if (!ctx.opts().sanitize) return true;  // insn_san = 0 (ablation)
  const u32* words =
      reinterpret_cast<const u32*>(machine().mem().page_ptr(frame));
  const auto result = sanitize_words(
      std::span<const u32>(words, kPageSize / 4), ctx.opts().san_mode);
  ++ctx.sanitized_pages;
  (result.ok ? lz_counters().sanitize_pass : lz_counters().sanitize_fail)
      .add();
  // Scanning 1024 words costs real kernel time.
  machine().charge(CostKind::kDispatch,
                   (kPageSize / 4) * machine().platform().insn_base);
  return result.ok;
}

Status LzModule::map_page_in_table(LzContext& ctx, mem::Stage1Table& tbl,
                                   VirtAddr va,
                                   const LzContext::LzPage& page,
                                   const mem::S1Attrs& attrs) {
  const auto existing = tbl.lookup(va);
  if (!existing.ok) return tbl.map(va, page.ipa, attrs);
  if (existing.attrs == attrs) return Status::ok();
  if (mem::s1_tightens(existing.attrs, attrs)) {
    // Removing rights (including global->nG) must break-before-make: a
    // stale entry with the wider permissions may be cached on any core.
    LZ_RETURN_IF_ERROR(tbl.unmap(va));
    machine().tlbi_va_all_asid_is(page_index(va), ctx.vmid);
    return tbl.map(va, page.ipa, attrs);
  }
  return tbl.protect(va, attrs);
}

Status LzModule::stage2_apply(LzContext& ctx, IntermAddr ipa, PhysAddr real,
                              const mem::S2Attrs& s2) {
  const auto cur = ctx.stage2->lookup(ipa);
  if (!cur.ok) return ctx.stage2->map(ipa, real, s2);
  if (cur.attrs == s2) return Status::ok();
  if (mem::s2_tightens(cur.attrs, s2)) {
    // The W^X transitions retire the stage-2 entry before re-faulting, so
    // today this branch is defensive; keep it protocol-correct for any
    // future caller that tightens a live entry directly.
    LZ_RETURN_IF_ERROR(ctx.stage2->unmap(ipa));
    machine().tlbi_vmid_is(ctx.vmid);
    return ctx.stage2->map(ipa, real, s2);
  }
  return ctx.stage2->protect(ipa, s2);
}

Status LzModule::fault_in_page(LzContext& ctx, VirtAddr va, bool want_write,
                               bool want_exec) {
  va = page_floor(va);
  auto& proc = ctx.proc();
  const kernel::Vma* vma = proc.find_vma(va);
  if (vma == nullptr) return err(Errc::kNotFound, "no vma");
  if (want_exec && !(vma->prot & kernel::kProtExec)) {
    return err(Errc::kPermissionDenied, "vma not executable");
  }
  if (want_write && !(vma->prot & kernel::kProtWrite)) {
    return err(Errc::kPermissionDenied, "vma not writable");
  }

  // Make sure the kernel-managed table has the frame (same VA -> same
  // physical frame as the kernel's own translation, §5.1.2).
  LZ_RETURN_IF_ERROR(kern().populate_page(proc, va, vma->prot));
  const auto kwalk = proc.pgt().lookup(va);
  LZ_CHECK(kwalk.ok);
  const PhysAddr real = page_floor(kwalk.out_addr);

  auto [it, inserted] = ctx.pages.try_emplace(page_index(va));
  LzContext::LzPage& page = it->second;
  if (inserted) {
    page.real = real;
    page.ipa = ctx.ipa_of(real);
    page.writable = (vma->prot & kernel::kProtWrite) != 0;
  }

  // W^X state machine with break-before-make (§6.3).
  if (want_exec && !page.exec_sanitized) {
    if (page.writable) {
      // Break: retire every writable mapping — the stage-1 aliases and the
      // stage-2 write permission — before the sanitizer runs; the eager
      // remap below re-establishes stage-2 without write. A failed unmap
      // would leave a writable alias live across the verdict, so errors
      // abort the exec transition instead of being discarded.
      for (auto& d : ctx.pgts) {
        if (d.in_use) LZ_RETURN_IF_ERROR(unmap_if_mapped(*d.tbl, va));
      }
      if (ctx.stage2->lookup(page.ipa).ok) {
        LZ_CHECK_OK(ctx.stage2->unmap(page.ipa));
      }
      machine().tlbi_va_all_asid_is(page_index(va), ctx.vmid);
      page.writable = false;
    }
    if (!sanitize_page(ctx, page.real)) {
      return err(Errc::kPermissionDenied, "sensitive instruction in page");
    }
    page.exec_sanitized = true;
    page.executable = true;
  }
  if (want_write && page.executable) {
    // JIT-style flip back to writable: the page loses execute rights and
    // its sanitizer verdict. Same break discipline as the exec transition —
    // in particular the stage-2 entry is retired here rather than having
    // its execute bit stripped in place below, which would leave a stale
    // executable translation live until the TLBI.
    for (auto& d : ctx.pgts) {
      if (d.in_use) LZ_RETURN_IF_ERROR(unmap_if_mapped(*d.tbl, va));
    }
    if (ctx.stage2->lookup(page.ipa).ok) {
      LZ_CHECK_OK(ctx.stage2->unmap(page.ipa));
    }
    machine().tlbi_va_all_asid_is(page_index(va), ctx.vmid);
    page.executable = false;
    page.exec_sanitized = false;
    page.writable = true;
  }

  // Compute attachments from protection regions.
  bool covered = false;
  struct Attachment {
    int pgt;
    mem::S1Attrs attrs;
  };
  std::vector<Attachment> attachments;
  for (const auto& region : ctx.regions) {
    if (va < region.start || va >= region.end) continue;
    covered = true;
    mem::S1Attrs a;
    a.user = (region.perm & kLzUser) != 0;
    // Least privilege: overlay permission intersected with the VMA's.
    a.read_only = !((region.perm & kLzWrite) &&
                    (vma->prot & kernel::kProtWrite) && page.writable);
    const bool exec = (region.perm & kLzExec) &&
                      (vma->prot & kernel::kProtExec) && page.executable;
    a.pxn = !exec;
    a.uxn = true;
    a.global = region.pgt == kPgtAll;
    attachments.push_back({region.pgt, a});
  }
  page.is_protected = covered;

  if (!covered) {
    // Unprotected memory: identical (global) mapping in every table, with
    // user-mode permissions translated to kernel mode (UXN -> PXN).
    mem::S1Attrs a;
    a.user = false;
    a.read_only = !page.writable || !(vma->prot & kernel::kProtWrite);
    a.pxn = !page.executable;
    a.uxn = true;
    a.global = true;
    attachments.push_back({kPgtAll, a});
  }

  // Coalesce to one final attribute set per table before touching any
  // descriptor (last covering region wins, exactly the state the old
  // apply-in-order loop converged to). Applying the intermediate states
  // used to rewrite live PTEs once per region — and the second write
  // tightens whenever a kPgtAll overlay precedes a domain region (e.g.
  // dropping the global bit), which violates break-before-make.
  std::vector<std::optional<mem::S1Attrs>> final_attrs(ctx.pgts.size());
  for (const auto& at : attachments) {
    if (at.pgt == kPgtAll) {
      for (std::size_t i = 0; i < ctx.pgts.size(); ++i) {
        if (ctx.pgts[i].in_use) final_attrs[i] = at.attrs;
      }
    } else {
      // free_pgt() dissolves a dead domain's regions, so an attachment can
      // only name a live table; fail loudly rather than walk a freed one.
      LZ_CHECK(ctx.pgts[at.pgt].in_use);
      final_attrs[at.pgt] = at.attrs;
    }
  }
  for (std::size_t i = 0; i < ctx.pgts.size(); ++i) {
    if (!final_attrs[i].has_value()) continue;
    LZ_RETURN_IF_ERROR(map_page_in_table(ctx, *ctx.pgts[i].tbl, va, page,
                                         *final_attrs[i]));
  }

  // Eagerly establish stage-2 during the stage-1 fault (§5.2) unless the
  // ablation disables it.
  if (ctx.opts().eager_stage2 || ctx.stage2->lookup(page.ipa).ok) {
    LZ_CHECK_OK(stage2_apply(
        ctx, page.ipa, page.real,
        mem::S2Attrs{true, true, page.writable, page.executable}));
  }
  machine().tlbi_va_all_asid_is(page_index(va), ctx.vmid);

  // Mapping work costs: a handful of table-walk writes.
  machine().charge(CostKind::kMem, 8 * machine().platform().mem_access);
  return Status::ok();
}

void LzModule::sync_unmap(LzContext& ctx, VirtAddr va) {
  auto it = ctx.pages.find(page_index(va));
  if (it == ctx.pages.end()) return;
  for (auto& d : ctx.pgts) {
    if (d.in_use) LZ_CHECK_OK(unmap_if_mapped(*d.tbl, va));
  }
  if (ctx.stage2->lookup(it->second.ipa).ok) {
    LZ_CHECK_OK(ctx.stage2->unmap(it->second.ipa));
  }
  if (ctx.opts().allow_scalable && ctx.opts().fake_phys) {
    ctx.fake.erase_real(it->second.real);
  }
  machine().tlbi_va_all_asid_is(page_index(va), ctx.vmid);
  ctx.pages.erase(it);
}

void LzModule::duplicate_kernel_table(LzContext& ctx) {
  // PAN mode: the process gets a kernel-managed duplicate of its stage-1
  // table with user-mode permissions translated to kernel mode (§5.1.2).
  auto& proc = ctx.proc();
  std::vector<VirtAddr> vas;
  proc.pgt().for_each([&vas](VirtAddr va, u64) { vas.push_back(va); });
  for (const VirtAddr va : vas) {
    (void)fault_in_page(ctx, va, /*want_write=*/false, /*want_exec=*/false);
  }
}

// --- Execution ---------------------------------------------------------------

void LzModule::enter_world(LzContext& ctx) {
  PerCoreWorld& w = world();
  LZ_CHECK(w.active == nullptr);
  auto& core = machine().core();
  const obs::SpanScope span(obs::SpanKind::kWorldSwitch, /*arg=*/0, ctx.vmid);
  const Cycles start = machine().account().total();
  w.saved_hcr = core.sysreg(SysReg::kHcrEl2);
  w.saved_vttbr = core.sysreg(SysReg::kVttbrEl2);
  host_.write_hcr(lz_hcr(ctx));
  host_.write_vttbr(ctx.stage2->vttbr());
  lz_counters().world_enter.add();
  obs::trace().world_switch(obs::WorldKind::kLzEnter, ctx.vmid);
  core.set_handler(ExceptionLevel::kEl1, nullptr);  // stub owns EL1 vectors
  host_.push_delegate(this);
  w.active = &ctx;
  const Cycles enter_delta = machine().account().total() - start;
  lz_hists().world_switch.record(enter_delta);
  if (obs::metrics().enabled())
    record_tenant_switch(lz_metric_families().world, ctx.vmid, 0,
                         /*with_domain=*/false, enter_delta);
}

void LzModule::exit_world(LzContext& ctx) {
  PerCoreWorld& w = world();
  LZ_CHECK(w.active == &ctx);
  const obs::SpanScope span(obs::SpanKind::kWorldSwitch, /*arg=*/1, ctx.vmid);
  const Cycles start = machine().account().total();
  host_.pop_delegate(this);
  host_.write_hcr(w.saved_hcr);
  host_.write_vttbr(w.saved_vttbr);
  lz_counters().world_exit.add();
  obs::trace().world_switch(obs::WorldKind::kLzExit, ctx.vmid);
  w.active = nullptr;
  const Cycles exit_delta = machine().account().total() - start;
  lz_hists().world_switch.record(exit_delta);
  if (obs::metrics().enabled())
    record_tenant_switch(lz_metric_families().world, ctx.vmid, 0,
                         /*with_domain=*/false, exit_delta);
}

sim::RunResult LzModule::run(LzContext& ctx, u64 max_steps) {
  auto& core = machine().core();
  enter_world(ctx);

  // Load the LightZone process's EL1 context.
  auto& c = ctx.ctx;
  for (unsigned i = 0; i < 31; ++i) core.set_x(i, c.x[i]);
  const auto st = arch::PState::from_spsr(c.spsr);
  core.pstate() = st;
  core.set_sp(ExceptionLevel::kEl1, c.sp);
  core.set_pc(c.pc);
  core.set_sysreg(SysReg::kTtbr0El1, c.ttbr0);
  core.set_sysreg(SysReg::kTtbr1El1, c.ttbr1);
  core.set_sysreg(SysReg::kVbarEl1, c.vbar);
  machine().charge(CostKind::kGpr, machine().platform().gpr_save_all());

  const auto result = core.run(max_steps);

  if (ctx.proc().alive()) {
    for (unsigned i = 0; i < 31; ++i) c.x[i] = core.x(i);
    c.sp = core.sp(ExceptionLevel::kEl1);
    c.pc = core.pc();
    c.spsr = core.pstate().to_spsr();
    c.ttbr0 = core.sysreg(SysReg::kTtbr0El1);
  }
  exit_world(ctx);
  return result;
}

Result<Cycles> LzModule::exec_gate_switch(LzContext& ctx, int gate) {
  LZ_CHECK(active() == &ctx);
  auto& core = machine().core();
  if (gate < 0 || static_cast<u32>(gate) >= ctx.opts().max_gates) {
    return err(Errc::kBadGate, "gate switch: bad gate id");
  }
  const VirtAddr entry = ctx.gates[gate].entry;
  if (entry == 0) {
    return err(Errc::kNoGate, "gate switch: gate has no registered entry");
  }
  if (ctx.gates[gate].pgt < 0) {
    return err(Errc::kNoGate, "gate switch: gate has no table mapped");
  }
  lz_counters().gate_switch.add();
  const int pgt = ctx.gates[gate].pgt;
  const u16 asid =
      static_cast<std::size_t>(pgt) < ctx.pgts.size() && ctx.pgts[pgt].in_use
          ? ctx.pgts[pgt].tbl->asid()
          : 0;
  obs::trace().gate_switch(static_cast<u16>(gate), asid);
  const obs::SpanScope span(obs::SpanKind::kGateSwitch,
                            static_cast<u64>(gate), ctx.vmid, asid);
  core.set_x(30, entry);
  core.set_pc(UpperLayout::gate_va(static_cast<u32>(gate)));
  // Measure on the calling core's own ledger: machine().cycles() sums every
  // core and would fold concurrent work into this switch.
  const Cycles start = machine().account().total();
  for (int i = 0; i < 64 && core.pc() != entry && ctx.proc().alive(); ++i) {
    core.step();
  }
  const Cycles delta = machine().account().total() - start;
  lz_hists().gate_switch.record(delta);
  if (obs::metrics().enabled())
    record_tenant_switch(lz_metric_families().gate, ctx.vmid, asid,
                         /*with_domain=*/true, delta);
  return delta;
}

Cycles LzModule::exec_set_pan(LzContext& ctx, bool pan) {
  LZ_CHECK(active() == &ctx);
  auto& core = machine().core();
  const obs::SpanScope span(obs::SpanKind::kPanSwitch, pan, ctx.vmid);
  const Cycles start = machine().account().total();
  core.pstate().pan = pan;
  machine().charge(CostKind::kInsn, machine().platform().insn_base);
  machine().charge(CostKind::kSysreg, machine().platform().pan_toggle);
  lz_counters().pan_toggle.add();
  obs::trace().pan_toggle(pan);
  const Cycles delta = machine().account().total() - start;
  lz_hists().pan_switch.record(delta);
  if (obs::metrics().enabled())
    record_tenant_switch(lz_metric_families().pan, ctx.vmid, 0,
                         /*with_domain=*/false, delta);
  return delta;
}

// --- Trap handling -----------------------------------------------------------

sim::TrapAction LzModule::kill(LzContext& ctx, const std::string& reason) {
  lz_counters().killed.add();
  ctx.proc().mark_killed("LightZone: " + reason);
  return TrapAction::kStop;
}

sim::TrapAction LzModule::on_el2_trap(const TrapInfo& info) {
  LzContext* ctx = active();
  if (ctx == nullptr) return TrapAction::kStop;
  ++ctx->traps;
  auto& core = machine().core();
  const auto& plat = machine().platform();

  switch (info.ec) {
    case ExceptionClass::kHvc64: {
      // Only the API library's forwarding stub may hypercall.
      const u64 elr2 = core.sysreg(SysReg::kElrEl2);
      if (elr2 < UpperLayout::kStubVa ||
          elr2 >= UpperLayout::kStubVa + kPageSize) {
        return kill(*ctx, "unexpected hypercall from application code");
      }
      lz_counters().hvc_forward.add();
      obs::trace().hvc_forward(
          static_cast<u32>(core.sysreg(SysReg::kEsrEl1)),
          static_cast<u8>(arch::esr_ec(core.sysreg(SysReg::kEsrEl1))));
      const obs::SpanScope span(
          obs::SpanKind::kHvcForward,
          static_cast<u64>(arch::esr_ec(core.sysreg(SysReg::kEsrEl1))),
          ctx->vmid);
      const Cycles fwd_start = machine().account().total();
      if (nested()) charge_nested_entry(*ctx);
      // §5.2.1: HCR_EL2/VTTBR_EL2 are *retained* while the host kernel
      // serves the trap; the ablation charges the conventional switches.
      if (!nested() && !host_.conditional_sysreg_opt()) {
        machine().charge(CostKind::kSysreg,
                         2 * (plat.sysreg_write_hcr + plat.sysreg_write_vttbr));
      }
      const auto action = handle_forwarded(*ctx);
      if (nested() && action == TrapAction::kResume) charge_nested_exit(*ctx);
      const Cycles fwd_delta = machine().account().total() - fwd_start;
      lz_hists().hvc_forward.record(fwd_delta);
      if (obs::metrics().enabled())
        record_tenant_switch(lz_metric_families().hvc, ctx->vmid, 0,
                             /*with_domain=*/false, fwd_delta);
      return action;
    }
    case ExceptionClass::kDataAbortLowerEl:
    case ExceptionClass::kInsnAbortLowerEl: {
      if (!info.stage2) return kill(*ctx, "unexpected lower-EL stage-1 abort");
      ++ctx->s2_faults;
      lz_counters().s2_fault.add();
      obs::trace().stage2_fault(info.ipa, ctx->vmid);
      // Stage-2 fault: with eager mapping this means the process reached
      // outside its VM; with the ablation it can be a legitimate deferred
      // stage-2 fill.
      if (!ctx->opts().eager_stage2) {
        const u64 ipa = page_floor(info.ipa);
        // Find the page by IPA and resync the stage-2 entry to the page's
        // current rights. The entry may already exist with narrower
        // permissions (a W^X transition widened the page since the fill):
        // stage2_apply handles absent/stale entries alike, where a blind
        // map() used to abort on kAlreadyExists. Only a fault on an entry
        // that is already in sync is a real violation.
        for (auto& [vp, pg] : ctx->pages) {
          if (page_floor(pg.ipa) != ipa) continue;
          const mem::S2Attrs s2{true, true, pg.writable, pg.executable};
          const auto cur = ctx->stage2->lookup(page_floor(pg.ipa));
          if (cur.ok && cur.attrs == s2) break;  // rights correct: escape
          LZ_CHECK_OK(stage2_apply(*ctx, page_floor(pg.ipa), pg.real, s2));
          machine().charge(CostKind::kDispatch, plat.dispatch_lz);
          core.eret_from(ExceptionLevel::kEl2);
          return TrapAction::kResume;
        }
      }
      return kill(*ctx, "stage-2 fault: access outside the process VM");
    }
    case ExceptionClass::kIrq: {
      // §5.1.3: interrupts trap kernel-mode processes directly to the
      // hypervisor, which invokes the kernel's interrupt handling and
      // resumes the process.
      machine().charge(CostKind::kDispatch,
                       plat.dispatch_lz + plat.dispatch_kernel);
      core.eret_from(ExceptionLevel::kEl2);
      return TrapAction::kResume;
    }
    case ExceptionClass::kMsrMrsTrap:
      return kill(*ctx, "trapped privileged system-register access");
    case ExceptionClass::kSmc64:
      return kill(*ctx, "SMC from kernel-mode process");
    default:
      return kill(*ctx, "unexpected EL2 trap");
  }
}

sim::TrapAction LzModule::handle_forwarded(LzContext& ctx) {
  auto& core = machine().core();
  const auto& plat = machine().platform();
  machine().charge(CostKind::kDispatch, plat.dispatch_lz);

  const u64 esr1 = core.sysreg(SysReg::kEsrEl1);
  const auto ec1 = arch::esr_ec(esr1);
  switch (ec1) {
    case ExceptionClass::kSvc64: {
      kern().dispatch_syscall(ctx.proc(), core);
      if (!ctx.proc().alive()) return TrapAction::kStop;
      // The interrupted PC of a LightZone process sits in ELR_EL1 (the
      // stub's final ERET consumes it); signal delivery redirects it.
      kern().maybe_deliver_pending(ctx.proc(), core, ExceptionLevel::kEl1);
      core.eret_from(ExceptionLevel::kEl2);
      return TrapAction::kResume;
    }
    case ExceptionClass::kDataAbortSameEl:
    case ExceptionClass::kInsnAbortSameEl: {
      ++ctx.s1_faults;
      lz_counters().s1_fault.add();
      const auto action =
          handle_lz_fault(ctx, core.sysreg(SysReg::kFarEl1), esr1);
      if (action == TrapAction::kResume) core.eret_from(ExceptionLevel::kEl2);
      return action;
    }
    case ExceptionClass::kBrk64: {
      const u16 imm = static_cast<u16>(arch::esr_iss(esr1) & 0xffff);
      if (imm == UpperLayout::kGateBrkImm) {
        return kill(ctx, "call-gate check failed (illegal TTBR0 or entry)");
      }
      return kill(ctx, "breakpoint in kernel-mode process");
    }
    case ExceptionClass::kUnknown:
      return kill(ctx, "undefined or banned instruction");
    default:
      return kill(ctx, "unhandled forwarded exception");
  }
}

sim::TrapAction LzModule::handle_lz_fault(LzContext& ctx, VirtAddr far,
                                          u64 esr_el1) {
  auto& core = machine().core();
  const auto& plat = machine().platform();
  machine().charge(CostKind::kGpr, plat.gpr_save_all());
  machine().charge(CostKind::kDispatch, plat.dispatch_kernel);
  machine().charge(CostKind::kGpr, plat.gpr_save_all());

  const u32 iss = arch::esr_iss(esr_el1);
  const bool is_exec = arch::esr_ec(esr_el1) == ExceptionClass::kInsnAbortSameEl;
  const bool is_write = !is_exec && arch::iss_is_write(iss);
  const bool permission = arch::is_permission_fault(arch::iss_fault_status(iss));

  const u64 vpage = page_index(far);
  auto it = ctx.pages.find(vpage);

  if (permission) {
    LzContext::LzPage* page = it == ctx.pages.end() ? nullptr : &it->second;
    if (page != nullptr) {
      // W^X transitions are the only legitimate permission faults.
      const kernel::Vma* vma = ctx.proc().find_vma(far);
      if (is_exec && vma != nullptr && (vma->prot & kernel::kProtExec) &&
          !page->executable) {
        const Status s = fault_in_page(ctx, far, false, /*want_exec=*/true);
        if (!s.is_ok()) return kill(ctx, s.message());
        return TrapAction::kResume;
      }
      if (is_write && vma != nullptr && (vma->prot & kernel::kProtWrite) &&
          page->executable) {
        const Status s = fault_in_page(ctx, far, /*want_write=*/true, false);
        if (!s.is_ok()) return kill(ctx, s.message());
        return TrapAction::kResume;
      }
      if (page->is_protected) {
        return kill(ctx, "illegal access to protected domain (permission)");
      }
    }
    return kill(ctx, "permission fault");
  }

  // Translation fault. Distinguish a demand fault from a domain violation:
  // a protected page unmapped in the *current* domain table is a violation.
  const u64 cur_ttbr = core.sysreg(SysReg::kTtbr0El1);
  int cur_pgt = -1;
  for (std::size_t i = 0; i < ctx.pgts.size(); ++i) {
    if (ctx.pgts[i].in_use &&
        domain_ttbr(ctx, static_cast<int>(i)) == cur_ttbr) {
      cur_pgt = static_cast<int>(i);
      break;
    }
  }
  if (cur_pgt < 0 && mem::classify_va(far) == mem::VaRange::kLower) {
    return kill(ctx, "executing with unregistered TTBR0");
  }

  bool covered_by_any = false;
  bool covered_by_current = false;
  for (const auto& region : ctx.regions) {
    if (far < region.start || far >= region.end) continue;
    covered_by_any = true;
    if (region.pgt == kPgtAll || region.pgt == cur_pgt) {
      covered_by_current = true;
    }
  }
  if (covered_by_any && !covered_by_current) {
    return kill(ctx, "illegal access to protected domain (unmapped here)");
  }

  const Status s = fault_in_page(ctx, far, is_write, is_exec);
  if (!s.is_ok()) return kill(ctx, s.message());
  return TrapAction::kResume;
}

// --- Nested (guest LightZone) charging, §5.2.2 -------------------------------

void LzModule::charge_nested_entry(LzContext& ctx) {
  auto& m = machine();
  const auto& plat = m.platform();
  m.charge(CostKind::kDispatch, plat.dispatch_lowvisor);
  // The Lowvisor writes the process context straight into the pt_regs page
  // it shares with the guest kernel — one copy instead of two.
  m.charge(CostKind::kGpr,
           plat.gpr_save_all() * (ctx.opts().shared_ptregs ? 1 : 2));
  // Both worlds use the physical EL1 register file: swap it.
  hv::charge_sysreg_save(m, kNestedEl1Ctx);
  hv::charge_sysreg_restore(m, kNestedEl1Ctx);
  host_.write_vttbr(vm_->stage2().vttbr());
  host_.write_hcr(vm_->vm_hcr());
  // Enter the guest kernel.
  m.charge(CostKind::kExcp,
           plat.eret(ExceptionLevel::kEl2, ExceptionLevel::kEl1));
  // Guest-module register bookkeeping through the deferred page (or, in
  // the ablation, one trap per access).
  if (ctx.opts().deferred_sysregs) {
    m.charge(CostKind::kMem, kDeferredAccesses * plat.mem_access);
  } else {
    m.charge(CostKind::kExcp,
             kDeferredAccesses *
                 (plat.excp(ExceptionLevel::kEl1, ExceptionLevel::kEl2) +
                  plat.eret(ExceptionLevel::kEl2, ExceptionLevel::kEl1) +
                  plat.dispatch_lowvisor));
  }
  // Rescheduling invalidates the cached shared-pt_regs pointer (drives the
  // fluctuation range the paper reports for this row of Table 4).
  if (kern().sched_generation() != ctx.last_sched_gen) {
    m.charge(CostKind::kDispatch, plat.ptregs_locate);
    ctx.last_sched_gen = kern().sched_generation();
  }
}

void LzModule::charge_nested_exit(LzContext& ctx) {
  auto& m = machine();
  const auto& plat = m.platform();
  // Guest kernel hypercalls back into the Lowvisor.
  m.charge(CostKind::kExcp,
           plat.excp(ExceptionLevel::kEl1, ExceptionLevel::kEl2));
  m.charge(CostKind::kDispatch, plat.dispatch_lowvisor);
  hv::charge_sysreg_save(m, kNestedEl1Ctx);
  hv::charge_sysreg_restore(m, kNestedEl1Ctx);
  host_.write_vttbr(ctx.stage2->vttbr());
  host_.write_hcr(lz_hcr(ctx));
  m.charge(CostKind::kGpr, plat.gpr_save_all());
  // The final ERET back into the stub is performed (and charged) by the
  // caller via Core::eret_from.
}

}  // namespace lz::core
