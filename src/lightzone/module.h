// The LightZone kernel module (§4.1.1, §5, §6).
//
// One module instance serves one kernel: the host-kernel module runs
// LightZone processes of the host, and a guest-kernel module (paired with
// the Lowvisor, §5.2.2) runs LightZone processes of a guest VM. Either way
// the process executes *exclusively in EL1 of its own per-process VM*:
//
//   * CPU virtualization: HCR_EL2 confines the process (stage-2 on, SMC and
//     TLB maintenance trapped; TVM/TRVM additionally set for PAN-mode
//     processes so stage-1 control registers cannot be touched).
//   * Memory virtualization: kernel-managed stage-1 domain tables map
//     virtual addresses to *fake* physical pages allocated in fault order
//     (§5.1.2) and a per-process stage-2 table maps fake pages to the real
//     frames; the stage-1 table frames themselves are read-only in stage-2.
//   * Trap handling: the EL1 vector of the process is the API library's
//     forwarding stub (real simulated code); it forwards syscalls and
//     stage-1 faults to this module with HVC (§5.1.3), and the module
//     invokes the kernel's own syscall table.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "hv/guest.h"
#include "hv/host.h"
#include "lightzone/gate.h"
#include "lightzone/sanitizer.h"
#include "mem/fake_phys.h"

namespace lz::core {

inline constexpr int kPgtAll = -1;  // lz_prot: attach to every page table

// Syscall numbers of the LightZone API (the user-space library issues
// these; the kernel module serves them — §4.1.1). A process that already
// entered LightZone reaches them through the normal forwarded-SVC path.
namespace lznr {
inline constexpr u32 kAlloc = 0x2001;        // -> pgt id
inline constexpr u32 kFree = 0x2002;         // (pgt)
inline constexpr u32 kProt = 0x2003;         // (addr, len, pgt, perm)
inline constexpr u32 kMapGatePgt = 0x2004;   // (pgt, gate)
inline constexpr u32 kSetGateEntry = 0x2005; // (gate, entry)
}  // namespace lznr

// lz_prot permission bits (Table 2).
enum LzPerm : u32 {
  kLzRead = 1,
  kLzWrite = 2,
  kLzExec = 4,
  // "User" marks the PTE as a user page: accessible from the kernel-mode
  // process only while PAN is disabled (the PAN isolation mechanism).
  kLzUser = 8,
};

struct LzOptions {
  bool allow_scalable = true;               // lz_enter arg 1
  SanitizeMode san_mode = SanitizeMode::kTtbr;  // lz_enter arg 2
  bool sanitize = true;  // insn_san == 0 disables static scanning entirely
  u32 max_gates = 256;
  // §5.2 / §5.1.2 optimisations (switchable for ablation benches).
  bool eager_stage2 = true;     // map stage-2 during the stage-1 fault
  bool fake_phys = true;        // randomised fake-physical layer
  bool shared_ptregs = true;    // nested: share pt_regs page with Lowvisor
  bool deferred_sysregs = true; // nested: NEVE-style deferred register page
};

class LzModule;

// Per-process LightZone state, attached to the kernel's Process object.
class LzContext : public kernel::ProcessExtension {
 public:
  LzContext(LzModule& module, kernel::Process& proc, const LzOptions& opts);
  ~LzContext() override;

  kernel::Process& proc() { return proc_; }
  const LzOptions& opts() const { return opts_; }

  struct DomainPgt {
    std::unique_ptr<mem::Stage1Table> tbl;
    bool in_use = false;
  };
  struct GateInfo {
    VirtAddr entry = 0;  // legal return address (static, pre-registered)
    int pgt = -1;        // target page table id
  };
  struct ProtRegion {
    VirtAddr start = 0, end = 0;
    int pgt = kPgtAll;
    u32 perm = 0;
  };
  struct LzPage {
    PhysAddr real = 0;
    IntermAddr ipa = 0;      // fake physical page (== real w/o randomisation)
    bool is_protected = false;
    bool exec_sanitized = false;
    bool writable = false;   // current W^X state
    bool executable = false;
  };

  LzModule& module_;
  kernel::Process& proc_;
  LzOptions opts_;

  u16 vmid = 0;
  std::unique_ptr<mem::Stage2Table> stage2;
  mem::FakePhysMap fake;
  std::vector<DomainPgt> pgts;              // id -> domain stage-1 table
  std::unique_ptr<mem::Stage1Table> upper;  // TTBR1 half (stub/gates/tables)
  std::vector<GateInfo> gates;
  std::vector<ProtRegion> regions;
  std::unordered_map<u64, LzPage> pages;    // vpage -> state

  // Physical frames of the two gate tables (module-written, RO to the VM).
  PhysAddr gatetab_pa = 0;
  std::vector<PhysAddr> ttbrtab_pages;  // indexed by pgt_id / 512

  // Saved EL1 execution context of the LightZone process.
  kernel::CpuCtx ctx;
  u64 last_sched_gen = ~u64{0};
  u16 next_asid = 1;

  // Statistics (benchmarks & EXPERIMENTS.md).
  u64 s1_faults = 0;
  u64 s2_faults = 0;
  u64 traps = 0;
  u64 sanitized_pages = 0;

  // IPA of a real frame under this context's addressing scheme.
  IntermAddr ipa_of(PhysAddr real);
  // Inverse (module-side use only; the process never sees real frames).
  PhysAddr pa_of(IntermAddr ipa) const;
  // FrameOps for a kernel-managed stage-1 table of this context: frames
  // come from the kernel, get registered at their fake address, and are
  // mapped read-only in stage-2 (§5.1.2).
  mem::FrameOps table_frame_ops();

  // Memory-overhead accounting (§9): frames used by domain tables, the
  // upper half and stage-2.
  u64 isolation_table_pages() const;
};

class LzModule : public hv::TrapDelegate {
 public:
  // Host-kernel module.
  explicit LzModule(hv::Host& host);
  // Guest-kernel module operating with Lowvisor assistance (§5.2.2): the
  // LightZone processes belong to `vm`'s guest kernel and every trap takes
  // the nested forwarding path.
  LzModule(hv::Host& host, hv::GuestVm& vm);
  ~LzModule() override;

  bool nested() const { return vm_ != nullptr; }
  hv::Host& host() { return host_; }
  kernel::Kernel& kern();  // the kernel this module is loaded into
  sim::Machine& machine() { return host_.machine(); }

  // --- Table 2 API (kernel side) ---------------------------------------------
  // Every call reports failure through Status/Result with errno-style
  // codes (Errc::kNoPgt / kBadRange / kBadGate / kNoGate / …); the
  // user-space library translates them to C ints at the Table-2 boundary.
  // lz_enter: move `proc` into its per-process virtual environment.
  LzContext& enter(kernel::Process& proc, const LzOptions& opts);
  // lz_alloc: new stage-1 domain page table; returns its id.
  Result<int> alloc_pgt(LzContext& ctx);
  // lz_free.
  Status free_pgt(LzContext& ctx, int pgt);
  // lz_prot: attach [addr, addr+len) to `pgt` (or kPgtAll) with overlay.
  Status prot(LzContext& ctx, VirtAddr addr, u64 len, int pgt, u32 perm);
  // lz_map_gate_pgt.
  Status map_gate_pgt(LzContext& ctx, int pgt, int gate);
  // Register the static legal entry of a gate (the address after the
  // lz_switch_to_ttbr_gate macro; fixed "before compilation", §6.2).
  Status set_gate_entry(LzContext& ctx, int gate, VirtAddr entry);

  // --- Execution ---------------------------------------------------------------
  // Runs the process (kernel mode, own VM) from ctx.ctx until it exits,
  // is killed, or max_steps elapse.
  sim::RunResult run(LzContext& ctx, u64 max_steps = 10'000'000);

  // Executes the real call-gate code on the core in the current LightZone
  // context (must be called between enter_world/exit_world or during run);
  // returns the cycles the switch consumed on the calling core, or
  // kBadGate / kNoGate when the gate id or its registration is invalid.
  Result<Cycles> exec_gate_switch(LzContext& ctx, int gate);
  // Toggle PAN by executing the MSR PAN instruction path cost.
  Cycles exec_set_pan(LzContext& ctx, bool pan);

  // World management for fine-grained driving (benchmarks). Worlds are
  // per core: each core may have its own LightZone process entered.
  void enter_world(LzContext& ctx);
  void exit_world(LzContext& ctx);
  LzContext* active() { return world().active; }

  // --- TrapDelegate -----------------------------------------------------------
  sim::TrapAction on_el2_trap(const sim::TrapInfo& info) override;

  // HCR_EL2 while one of this module's processes executes.
  u64 lz_hcr(const LzContext& ctx) const;

  // TTBR value (fake root + ASID) the hardware sees for a domain table.
  u64 domain_ttbr(LzContext& ctx, int pgt_id);

  // Pre-fault a page into the LightZone tables (setup/warm-up paths).
  Status touch_page(LzContext& ctx, VirtAddr va, bool want_write,
                    bool want_exec) {
    return fault_in_page(ctx, va, want_write, want_exec);
  }

  // Charged when the kernel unmaps process memory: synchronise LightZone
  // tables (§5.1.2 "synchronized with the kernel-managed page tables").
  void sync_unmap(LzContext& ctx, VirtAddr va);

 private:
  friend class LzContext;

  void register_api_syscalls();
  sim::TrapAction handle_forwarded(LzContext& ctx);
  sim::TrapAction handle_lz_fault(LzContext& ctx, VirtAddr far, u64 esr_el1);
  sim::TrapAction kill(LzContext& ctx, const std::string& reason);

  // Fault-in one page for the LightZone process, applying protection
  // regions, permission translation, sanitizing and W^X.
  Status fault_in_page(LzContext& ctx, VirtAddr va, bool want_write,
                       bool want_exec);
  Status map_page_in_table(LzContext& ctx, mem::Stage1Table& tbl, VirtAddr va,
                           const LzContext::LzPage& page,
                           const mem::S1Attrs& attrs);
  // Bring the stage-2 entry for `ipa` to exactly `s2`, break-before-make:
  // absent -> map, equal -> no-op, widening -> in-place protect, tightening
  // -> unmap + broadcast TLBI + remap.
  Status stage2_apply(LzContext& ctx, IntermAddr ipa, PhysAddr real,
                      const mem::S2Attrs& s2);
  bool sanitize_page(LzContext& ctx, PhysAddr frame);

  // Build the upper half (stub, gates, GateTab/TTBRTab) for a new context.
  void build_upper_half(LzContext& ctx);
  void write_ttbrtab(LzContext& ctx, int pgt_id, u64 ttbr_value);
  void write_gatetab(LzContext& ctx, int gate_id);

  // Duplicate the kernel-managed table into pgts[0] (PAN mode, §5.1.2).
  void duplicate_kernel_table(LzContext& ctx);

  // Nested-path charging (§5.2.2).
  void charge_nested_entry(LzContext& ctx);
  void charge_nested_exit(LzContext& ctx);

  hv::Host& host_;
  hv::GuestVm* vm_ = nullptr;
  // World state one core owns: the LightZone context it is executing and
  // the host HCR/VTTBR values to restore on exit. Indexed by the calling
  // thread's core binding (mirrors hv::Host::PerCore); no lock — only the
  // owning core's thread touches its slot.
  struct PerCoreWorld {
    LzContext* active = nullptr;
    u64 saved_hcr = 0;
    u64 saved_vttbr = 0;
  };
  PerCoreWorld& world() { return world_[machine().current_core_id()]; }
  std::vector<PerCoreWorld> world_;
};

}  // namespace lz::core
