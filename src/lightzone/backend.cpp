#include "lightzone/backend.h"

namespace lz::core {

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kTtbrPan: return "ttbr_pan";
    case BackendKind::kPoe: return "poe";
    case BackendKind::kCca: return "cca";
    case BackendKind::kWatchpoint: return "watchpoint";
    case BackendKind::kLwc: return "lwc";
  }
  return "?";
}

std::optional<BackendKind> backend_from_string(std::string_view name) {
  for (const BackendKind k :
       {BackendKind::kTtbrPan, BackendKind::kPoe, BackendKind::kCca,
        BackendKind::kWatchpoint, BackendKind::kLwc}) {
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

Cycles TtbrPanBackend::access(VirtAddr va) {
  // The real mechanism executes a real load: the access goes through the
  // active domain table (and stage-2), hitting or walking the TLBs.
  auto& m = module_->machine();
  const Cycles start = m.cycles();
  m.core().mem_read(va, 8);
  return m.cycles() - start;
}

}  // namespace lz::core
