#include "lightzone/sanitizer.h"

#include "arch/insn.h"
#include "arch/sysreg.h"
#include "support/bits.h"

namespace lz::core {

using arch::Insn;
using arch::Op;

namespace {

bool deny(std::string* reason, const char* why) {
  if (reason != nullptr) *reason = why;
  return false;
}

// Table 3, "System" rows. `insn.sys` carries op0/op1/CRn/CRm/op2 exactly as
// encoded; target-register identity comes from the full encoding.
bool system_insn_allowed(const Insn& insn, SanitizeMode mode,
                         std::string* reason) {
  const auto& sys = insn.sys;

  if (sys.op0 == 0b00) {
    if (sys.crn == 0b0100) {
      // MSR (immediate) space. Only the PAN field is ever legitimate:
      // DAIF masking, SPSel games etc. could break confinement.
      if (sys.op2 == arch::kPStatePan.op2 && sys.op1 == arch::kPStatePan.op1) {
        return true;  // domain switch primitive for the PAN mechanism
      }
      return deny(reason, "MSR(imm) PSTATE field other than PAN");
    }
    return true;  // barriers (CRn=3) and hints (CRn=2) are harmless
  }

  if (sys.op0 == 0b01) {
    if (sys.crn == 7) {
      return deny(reason, "cache/AT maintenance (op0=01, CRn=7)");
    }
    // TLBI (CRn=8) is left to HCR_EL2.TTLB trapping at run time, matching
    // Table 3 (which lists only CRn=7 for op0=01).
    return true;
  }

  if (sys.op0 == 0b10) {
    // Debug/breakpoint register space: nothing legitimate for an
    // application; covered by MDCR trapping on hardware.
    return deny(reason, "debug-register access (op0=10)");
  }

  // op0 == 0b11: ordinary system registers.
  const auto reg = arch::sysreg_from_encoding(sys);
  if (sys.crn == 4) {
    // Special-purpose register space: only NZCV / FPCR / FPSR are allowed.
    if (reg == arch::SysReg::kNzcv || reg == arch::SysReg::kFpcr ||
        reg == arch::SysReg::kFpsr) {
      return true;
    }
    return deny(reason, "special-purpose register other than NZCV/FPCR/FPSR");
  }
  if (sys.op1 == 3) return true;  // EL0-accessible space (TPIDR_EL0, CNTVCT…)
  if (reg == arch::SysReg::kTtbr0El1) {
    // Legal only inside the TTBR1-mapped call gate, which is not subject
    // to sanitizing; in application pages it is always rejected. Under the
    // PAN mechanism it is rejected outright (Table 3 last row).
    return deny(reason, mode == SanitizeMode::kTtbr
                            ? "TTBR0_EL1 update outside the call gate"
                            : "TTBR0_EL1 update under PAN mode");
  }
  return deny(reason, "privileged system register access");
}

}  // namespace

bool insn_allowed(u32 word, SanitizeMode mode, std::string* reason) {
  const Insn insn = arch::decode(word);

  switch (insn.op) {
    case Op::kEret:
      return deny(reason, "ERET");
    case Op::kLdtr:
    case Op::kSttr:
      // Unprivileged accesses read/write user pages regardless of PAN, so
      // they break the PAN mechanism; under pure TTBR isolation the
      // protected pages are simply unmapped, so they are harmless.
      if (mode == SanitizeMode::kPan) {
        return deny(reason, "unprivileged load/store under PAN mode");
      }
      return true;
    default:
      break;
  }

  if (arch::in_system_space(word)) {
    return system_insn_allowed(insn, mode, reason);
  }
  return true;
}

SanitizeResult sanitize_words(std::span<const u32> words, SanitizeMode mode) {
  SanitizeResult result;
  for (std::size_t i = 0; i < words.size(); ++i) {
    std::string reason;
    if (!insn_allowed(words[i], mode, &reason)) {
      result.ok = false;
      result.bad_offset = i * 4;
      result.bad_word = words[i];
      result.reason = std::move(reason);
      return result;
    }
  }
  return result;
}

}  // namespace lz::core
