// Sensitive-instruction sanitizer (§6.3, Table 3).
//
// A LightZone process executes at EL1, so instructions that are harmless in
// user mode become dangerous: ERET, unprivileged loads/stores (they bypass
// PAN-based isolation), and most system-register accesses. The sanitizer
// scans every executable page of the application (TTBR0-mapped code) before
// it becomes executable and rejects pages containing sensitive encodings.
// The TTBR1-mapped call gates and the API stub are trusted and never
// scanned — that is where the one legitimate `msr TTBR0_EL1, Xt` lives.
//
// Together with W^X + break-before-make enforcement in the module, this
// closes the TOCTTOU window of writing sensitive instructions into an
// already-sanitized page.
#pragma once

#include <span>
#include <string>

#include "arch/decode.h"
#include "support/types.h"

namespace lz::core {

// Table 3's two rule columns.
enum class SanitizeMode : u8 {
  kTtbr = 1,  // scalable isolation: TTBR0 writes happen only in call gates
  kPan = 2,   // PAN isolation: unprivileged load/stores are also banned
};

struct SanitizeResult {
  bool ok = true;
  u64 bad_offset = 0;       // byte offset of the offending word
  u32 bad_word = 0;
  std::string reason;
};

// True if this single instruction word is permitted in application code
// under `mode`.
bool insn_allowed(u32 word, SanitizeMode mode, std::string* reason = nullptr);

// Scan a full page (or arbitrary word sequence).
SanitizeResult sanitize_words(std::span<const u32> words, SanitizeMode mode);

}  // namespace lz::core
