#include "lightzone/api.h"

#include "obs/metrics.h"

#ifdef LZ_CONF_CHECK
#include "check/bbm.h"
#endif

namespace lz::core {

void LzProc::record_backend_switch(int gate, Cycles delta) {
  if (!obs::metrics().enabled()) return;
  obs::LabelSet labels;
  labels.set(obs::LabelKey::kBackend, backend_->name());
  labels.set(obs::LabelKey::kDomain, static_cast<u64>(gate));
  obs::metrics()
      .histogram_family("lz.backend.switch_cycles")
      .with(labels)
      .record(delta);
}

Env::Env(const Options& opts)
    : placement(opts.placement_), backend(opts.backend_) {
#ifdef LZ_CONF_CHECK
  // Arm the break-before-make write-protocol oracle (DESIGN.md §15) for
  // every scenario. It charges no simulated cycles and registers no obs
  // counters while quiet, so golden reports stay byte-identical; any PTE
  // store that violates the protocol is a fail-stop divergence.
  check::BbmMonitor::install();
#endif
  // Snapshot before construction: wiring the machine/host registers (and
  // possibly bumps) counters, and those belong to this scenario's delta.
  obs_baseline_ = obs::registry().snapshot();
  machine = std::make_unique<sim::Machine>(*opts.platform_, opts.seed_,
                                           opts.cores_, opts.mem_bytes_);
  host = std::make_unique<hv::Host>(*machine);
  if (placement == Placement::kGuest) {
    vm = std::make_unique<hv::GuestVm>(*host, "vm0");
    // Guest-kernel module + Lowvisor collaboration (§5.2.2).
    module = std::make_unique<LzModule>(*host, *vm);
  } else {
    module = std::make_unique<LzModule>(*host);
  }
}

Env::~Env() = default;

obs::Snapshot Env::counters_delta() const {
  return obs::Registry::delta(obs_baseline_, obs::registry().snapshot());
}

kernel::Kernel& Env::kern() {
  return placement == Placement::kGuest ? vm->kern() : host->kern();
}

kernel::Process& Env::new_process() {
  auto& k = kern();
  auto& proc = k.create_process();
  LZ_CHECK_OK(k.mmap(proc, kCodeVa, kCodeLen,
                     kernel::kProtRead | kernel::kProtExec));
  LZ_CHECK_OK(k.mmap(proc, kHeapVa, kHeapLen,
                     kernel::kProtRead | kernel::kProtWrite));
  LZ_CHECK_OK(k.mmap(proc, kStackTop - kStackLen, kStackLen,
                     kernel::kProtRead | kernel::kProtWrite));
  proc.ctx().sp = kStackTop - 64;
  proc.ctx().pc = kCodeVa;
  return proc;
}

LzProc LzProc::enter(LzModule& module, kernel::Process& proc,
                     bool allow_scalable, int insn_san,
                     const LzOptions* overrides) {
  LzOptions opts;
  if (overrides != nullptr) opts = *overrides;
  opts.allow_scalable = allow_scalable;
  opts.sanitize = insn_san != 0;
  opts.san_mode = insn_san == 2 ? SanitizeMode::kPan : SanitizeMode::kTtbr;
  LzContext& ctx = module.enter(proc, opts);
  return LzProc(std::make_shared<TtbrPanBackend>(module, ctx), module, ctx);
}

namespace table2 {

int errno_of(const Status& s) {
  switch (s.errc()) {
    case Errc::kOk:
      return 0;
    case Errc::kResourceExhausted:
      return -12;  // -ENOMEM
    case Errc::kPermissionDenied:
    case Errc::kFailedPrecondition:
      return -1;  // -EPERM
    case Errc::kNotFound:
      return -2;  // -ENOENT
    default:
      // kNoPgt / kBadRange / kBadGate / kNoGate / kInvalidArgument / …
      return -22;  // -EINVAL
  }
}

int lz_alloc(LzProc& p) { return to_c_int(p.lz_alloc()); }

int lz_free(LzProc& p, int pgt) { return to_c_int(p.lz_free(pgt)); }

int lz_prot(LzProc& p, VirtAddr addr, u64 len, int pgt, u32 perm) {
  return to_c_int(p.lz_prot(addr, len, pgt, perm));
}

int lz_map_gate_pgt(LzProc& p, int pgt, int gate) {
  return to_c_int(p.lz_map_gate_pgt(pgt, gate));
}

int lz_set_gate_entry(LzProc& p, int gate, VirtAddr entry) {
  return to_c_int(p.lz_set_gate_entry(gate, entry));
}

}  // namespace table2

}  // namespace lz::core
