#include "lightzone/api.h"

namespace lz::core {

Env::Env(const arch::Platform& platform, Placement placement_in, u64 seed)
    : placement(placement_in) {
  machine = std::make_unique<sim::Machine>(platform, seed);
  host = std::make_unique<hv::Host>(*machine);
  if (placement == Placement::kGuest) {
    vm = std::make_unique<hv::GuestVm>(*host, "vm0");
    // Guest-kernel module + Lowvisor collaboration (§5.2.2).
    module = std::make_unique<LzModule>(*host, *vm);
  } else {
    module = std::make_unique<LzModule>(*host);
  }
}

Env::~Env() = default;

kernel::Kernel& Env::kern() {
  return placement == Placement::kGuest ? vm->kern() : host->kern();
}

kernel::Process& Env::new_process() {
  auto& k = kern();
  auto& proc = k.create_process();
  LZ_CHECK_OK(k.mmap(proc, kCodeVa, kCodeLen,
                     kernel::kProtRead | kernel::kProtExec));
  LZ_CHECK_OK(k.mmap(proc, kHeapVa, kHeapLen,
                     kernel::kProtRead | kernel::kProtWrite));
  LZ_CHECK_OK(k.mmap(proc, kStackTop - kStackLen, kStackLen,
                     kernel::kProtRead | kernel::kProtWrite));
  proc.ctx().sp = kStackTop - 64;
  proc.ctx().pc = kCodeVa;
  return proc;
}

LzProc LzProc::enter(LzModule& module, kernel::Process& proc,
                     bool allow_scalable, int insn_san,
                     const LzOptions* overrides) {
  LzOptions opts;
  if (overrides != nullptr) opts = *overrides;
  opts.allow_scalable = allow_scalable;
  opts.sanitize = insn_san != 0;
  opts.san_mode = insn_san == 2 ? SanitizeMode::kPan : SanitizeMode::kTtbr;
  LzContext& ctx = module.enter(proc, opts);
  return LzProc(module, ctx);
}

}  // namespace lz::core
