#include "lightzone/gate.h"

#include "arch/sysreg.h"

namespace lz::core {

using arch::Cond;
using arch::SysReg;

sim::Asm build_stub_page() {
  sim::Asm a;
  // Vector table entries every 0x80 bytes up to 0x480; each used entry is
  // `hvc #imm; eret`. The module routes by reading ESR_EL1 (the original
  // trap cause recorded by the hardware before the stub ran).
  constexpr u64 kEntries = 10;  // offsets 0x000 .. 0x480
  for (u64 entry = 0; entry < kEntries; ++entry) {
    const bool irq = (entry % 2) == 1;  // 0x080/0x280/0x480 are IRQ vectors
    a.hvc(irq ? kStubHvcIrq : kStubHvcSync);
    a.eret();
    for (int i = 2; i < 0x80 / 4; ++i) a.nop();
  }
  return a;
}

sim::Asm build_gate_code(u32 gate_id, u32 max_gates) {
  sim::Asm a;
  auto fail = a.new_label();

  // ---- Phase 1: switch ------------------------------------------------------
  a.mov_imm64(16, gate_id);
  a.mov_imm64(17, UpperLayout::gatetab_entry_va(gate_id));
  a.ldr(18, 17, 8);  // PGTID
  a.mov_imm64(19, UpperLayout::kTtbrTabVa);
  a.ldr_reg(20, 19, 18);  // new TTBR0 value (TTBRTab[PGTID])
  a.msr(SysReg::kTtbr0El1, 20);
  a.isb();

  // ---- Phase 2: check (no register from phase 1 is trusted) ----------------
  a.mov_imm64(21, gate_id);
  a.mov_imm64(22, max_gates);
  a.cmp_reg(21, 22);
  a.b_cond(Cond::kCs, fail);  // gate id out of range
  a.mov_imm64(23, UpperLayout::gatetab_entry_va(gate_id));
  a.ldr(24, 23, 0);  // legal ENTRY
  a.ldr(25, 23, 8);  // PGTID (re-queried)
  a.mov_imm64(26, UpperLayout::kTtbrTabVa);
  a.ldr_reg(27, 26, 25);  // legal TTBR0
  a.cbz(27, fail);        // freed / never-registered page table
  a.mrs(28, SysReg::kTtbr0El1);
  a.cmp_reg(28, 27);
  a.b_cond(Cond::kNe, fail);  // live TTBR0 is not the registered one
  a.cmp_reg(24, 30);
  a.b_cond(Cond::kNe, fail);  // return address is not the legal entry
  a.ret();                    // indirect jump back to the application

  a.bind(fail);
  a.brk(UpperLayout::kGateBrkImm);  // module terminates the process

  LZ_CHECK(a.size_bytes() <= UpperLayout::kGateStride);
  return a;
}

}  // namespace lz::core
