// TTBR1-mapped secure call gate (§6.2, Figure 2).
//
// Domain switches must not let an attacker install an arbitrary TTBR0 or
// resume at an arbitrary address. Each statically allocated gate is a short
// code sequence living in the *upper* (TTBR1-translated) half of the
// address space — so its integrity does not depend on the attacker-
// controllable TTBR0 — and is generated with its GATE_ID baked in as an
// immediate:
//
//   phase 1 (switch): look up GateTab[GATE_ID].PGTID, then TTBRTab[PGTID],
//                     MSR TTBR0_EL1, ISB.
//   phase 2 (check):  re-materialise everything from immediates, verify the
//                     gate id range, re-query both tables, compare the live
//                     TTBR0 and the link register against the legal values,
//                     then RET (an indirect jump back to the application).
//                     Any mismatch lands on BRK and the module kills the
//                     process.
//
// Phase 2 trusts no register produced by phase 1, so jumping into the
// middle of the gate (including straight at the MSR) with attacker-chosen
// registers is caught before control returns to attacker code.
#pragma once

#include "sim/assembler.h"
#include "support/types.h"

namespace lz::core {

// Upper-half virtual layout of the LightZone runtime (all TTBR1-mapped).
struct UpperLayout {
  static constexpr VirtAddr kBase = 0xffff'0000'0000'0000ULL;
  static constexpr VirtAddr kStubVa = kBase;  // VBAR_EL1: forwarding stub
  static constexpr VirtAddr kGateCodeVa = kBase + 0x10000;
  static constexpr VirtAddr kGateTabVa = kBase + 0x200000;
  static constexpr VirtAddr kTtbrTabVa = kBase + 0x400000;
  static constexpr u64 kGateStride = 128;  // bytes reserved per gate
  static constexpr u16 kGateBrkImm = 0x42; // BRK immediate on check failure

  static VirtAddr gate_va(u32 gate_id) {
    return kGateCodeVa + u64{gate_id} * kGateStride;
  }
  static VirtAddr gatetab_entry_va(u32 gate_id) {
    return kGateTabVa + u64{gate_id} * 16;  // {ENTRY, PGTID} pairs
  }
  static VirtAddr ttbrtab_entry_va(u32 pgt_id) {
    return kTtbrTabVa + u64{pgt_id} * 8;
  }
};

// The exception-vector page of the LightZone API library: every entry
// forwards to the kernel module with HVC, and returns with ERET (§5.1.3).
// HVC immediates distinguish synchronous traps from IRQs.
inline constexpr u16 kStubHvcSync = 0;
inline constexpr u16 kStubHvcIrq = 1;
sim::Asm build_stub_page();

// One call gate's code (fits in kGateStride bytes).
sim::Asm build_gate_code(u32 gate_id, u32 max_gates);

}  // namespace lz::core
