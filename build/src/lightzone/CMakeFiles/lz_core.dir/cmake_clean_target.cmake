file(REMOVE_RECURSE
  "liblz_core.a"
)
