# Empty dependencies file for lz_core.
# This may be replaced when dependencies are built.
