file(REMOVE_RECURSE
  "CMakeFiles/lz_core.dir/api.cpp.o"
  "CMakeFiles/lz_core.dir/api.cpp.o.d"
  "CMakeFiles/lz_core.dir/gate.cpp.o"
  "CMakeFiles/lz_core.dir/gate.cpp.o.d"
  "CMakeFiles/lz_core.dir/module.cpp.o"
  "CMakeFiles/lz_core.dir/module.cpp.o.d"
  "CMakeFiles/lz_core.dir/sanitizer.cpp.o"
  "CMakeFiles/lz_core.dir/sanitizer.cpp.o.d"
  "liblz_core.a"
  "liblz_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lz_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
