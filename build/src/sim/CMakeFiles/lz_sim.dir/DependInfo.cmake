
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/assembler.cpp" "src/sim/CMakeFiles/lz_sim.dir/assembler.cpp.o" "gcc" "src/sim/CMakeFiles/lz_sim.dir/assembler.cpp.o.d"
  "/root/repo/src/sim/core.cpp" "src/sim/CMakeFiles/lz_sim.dir/core.cpp.o" "gcc" "src/sim/CMakeFiles/lz_sim.dir/core.cpp.o.d"
  "/root/repo/src/sim/cost.cpp" "src/sim/CMakeFiles/lz_sim.dir/cost.cpp.o" "gcc" "src/sim/CMakeFiles/lz_sim.dir/cost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/lz_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/lz_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lz_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
