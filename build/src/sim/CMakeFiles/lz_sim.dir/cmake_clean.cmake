file(REMOVE_RECURSE
  "CMakeFiles/lz_sim.dir/assembler.cpp.o"
  "CMakeFiles/lz_sim.dir/assembler.cpp.o.d"
  "CMakeFiles/lz_sim.dir/core.cpp.o"
  "CMakeFiles/lz_sim.dir/core.cpp.o.d"
  "CMakeFiles/lz_sim.dir/cost.cpp.o"
  "CMakeFiles/lz_sim.dir/cost.cpp.o.d"
  "liblz_sim.a"
  "liblz_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lz_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
