file(REMOVE_RECURSE
  "liblz_sim.a"
)
