# Empty dependencies file for lz_sim.
# This may be replaced when dependencies are built.
