# Empty compiler generated dependencies file for lz_mem.
# This may be replaced when dependencies are built.
