file(REMOVE_RECURSE
  "CMakeFiles/lz_mem.dir/fake_phys.cpp.o"
  "CMakeFiles/lz_mem.dir/fake_phys.cpp.o.d"
  "CMakeFiles/lz_mem.dir/page_table.cpp.o"
  "CMakeFiles/lz_mem.dir/page_table.cpp.o.d"
  "CMakeFiles/lz_mem.dir/phys_mem.cpp.o"
  "CMakeFiles/lz_mem.dir/phys_mem.cpp.o.d"
  "CMakeFiles/lz_mem.dir/tlb.cpp.o"
  "CMakeFiles/lz_mem.dir/tlb.cpp.o.d"
  "liblz_mem.a"
  "liblz_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lz_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
