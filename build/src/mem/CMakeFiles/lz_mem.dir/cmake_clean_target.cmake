file(REMOVE_RECURSE
  "liblz_mem.a"
)
