file(REMOVE_RECURSE
  "CMakeFiles/lz_hv.dir/guest.cpp.o"
  "CMakeFiles/lz_hv.dir/guest.cpp.o.d"
  "CMakeFiles/lz_hv.dir/host.cpp.o"
  "CMakeFiles/lz_hv.dir/host.cpp.o.d"
  "CMakeFiles/lz_hv.dir/world.cpp.o"
  "CMakeFiles/lz_hv.dir/world.cpp.o.d"
  "liblz_hv.a"
  "liblz_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lz_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
