# Empty dependencies file for lz_hv.
# This may be replaced when dependencies are built.
