file(REMOVE_RECURSE
  "liblz_hv.a"
)
