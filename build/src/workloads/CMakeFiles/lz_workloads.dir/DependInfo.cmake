
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/app_driver.cpp" "src/workloads/CMakeFiles/lz_workloads.dir/app_driver.cpp.o" "gcc" "src/workloads/CMakeFiles/lz_workloads.dir/app_driver.cpp.o.d"
  "/root/repo/src/workloads/crypto/aes.cpp" "src/workloads/CMakeFiles/lz_workloads.dir/crypto/aes.cpp.o" "gcc" "src/workloads/CMakeFiles/lz_workloads.dir/crypto/aes.cpp.o.d"
  "/root/repo/src/workloads/dbms.cpp" "src/workloads/CMakeFiles/lz_workloads.dir/dbms.cpp.o" "gcc" "src/workloads/CMakeFiles/lz_workloads.dir/dbms.cpp.o.d"
  "/root/repo/src/workloads/httpd.cpp" "src/workloads/CMakeFiles/lz_workloads.dir/httpd.cpp.o" "gcc" "src/workloads/CMakeFiles/lz_workloads.dir/httpd.cpp.o.d"
  "/root/repo/src/workloads/microbench.cpp" "src/workloads/CMakeFiles/lz_workloads.dir/microbench.cpp.o" "gcc" "src/workloads/CMakeFiles/lz_workloads.dir/microbench.cpp.o.d"
  "/root/repo/src/workloads/nvm.cpp" "src/workloads/CMakeFiles/lz_workloads.dir/nvm.cpp.o" "gcc" "src/workloads/CMakeFiles/lz_workloads.dir/nvm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lightzone/CMakeFiles/lz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/lz_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/lz_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/lz_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lz_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/lz_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/lz_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lz_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
