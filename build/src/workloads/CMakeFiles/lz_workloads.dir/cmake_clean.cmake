file(REMOVE_RECURSE
  "CMakeFiles/lz_workloads.dir/app_driver.cpp.o"
  "CMakeFiles/lz_workloads.dir/app_driver.cpp.o.d"
  "CMakeFiles/lz_workloads.dir/crypto/aes.cpp.o"
  "CMakeFiles/lz_workloads.dir/crypto/aes.cpp.o.d"
  "CMakeFiles/lz_workloads.dir/dbms.cpp.o"
  "CMakeFiles/lz_workloads.dir/dbms.cpp.o.d"
  "CMakeFiles/lz_workloads.dir/httpd.cpp.o"
  "CMakeFiles/lz_workloads.dir/httpd.cpp.o.d"
  "CMakeFiles/lz_workloads.dir/microbench.cpp.o"
  "CMakeFiles/lz_workloads.dir/microbench.cpp.o.d"
  "CMakeFiles/lz_workloads.dir/nvm.cpp.o"
  "CMakeFiles/lz_workloads.dir/nvm.cpp.o.d"
  "liblz_workloads.a"
  "liblz_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lz_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
