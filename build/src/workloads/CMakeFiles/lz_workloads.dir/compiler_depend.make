# Empty compiler generated dependencies file for lz_workloads.
# This may be replaced when dependencies are built.
