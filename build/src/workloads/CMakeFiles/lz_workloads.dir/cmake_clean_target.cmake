file(REMOVE_RECURSE
  "liblz_workloads.a"
)
