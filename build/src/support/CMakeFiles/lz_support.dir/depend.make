# Empty dependencies file for lz_support.
# This may be replaced when dependencies are built.
