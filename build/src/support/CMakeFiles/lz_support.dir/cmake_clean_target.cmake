file(REMOVE_RECURSE
  "liblz_support.a"
)
