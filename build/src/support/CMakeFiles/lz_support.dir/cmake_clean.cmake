file(REMOVE_RECURSE
  "CMakeFiles/lz_support.dir/status.cpp.o"
  "CMakeFiles/lz_support.dir/status.cpp.o.d"
  "liblz_support.a"
  "liblz_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lz_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
