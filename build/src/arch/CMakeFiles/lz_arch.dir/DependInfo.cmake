
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/decode.cpp" "src/arch/CMakeFiles/lz_arch.dir/decode.cpp.o" "gcc" "src/arch/CMakeFiles/lz_arch.dir/decode.cpp.o.d"
  "/root/repo/src/arch/encode.cpp" "src/arch/CMakeFiles/lz_arch.dir/encode.cpp.o" "gcc" "src/arch/CMakeFiles/lz_arch.dir/encode.cpp.o.d"
  "/root/repo/src/arch/platform.cpp" "src/arch/CMakeFiles/lz_arch.dir/platform.cpp.o" "gcc" "src/arch/CMakeFiles/lz_arch.dir/platform.cpp.o.d"
  "/root/repo/src/arch/sysreg.cpp" "src/arch/CMakeFiles/lz_arch.dir/sysreg.cpp.o" "gcc" "src/arch/CMakeFiles/lz_arch.dir/sysreg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/lz_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
