file(REMOVE_RECURSE
  "liblz_arch.a"
)
