file(REMOVE_RECURSE
  "CMakeFiles/lz_arch.dir/decode.cpp.o"
  "CMakeFiles/lz_arch.dir/decode.cpp.o.d"
  "CMakeFiles/lz_arch.dir/encode.cpp.o"
  "CMakeFiles/lz_arch.dir/encode.cpp.o.d"
  "CMakeFiles/lz_arch.dir/platform.cpp.o"
  "CMakeFiles/lz_arch.dir/platform.cpp.o.d"
  "CMakeFiles/lz_arch.dir/sysreg.cpp.o"
  "CMakeFiles/lz_arch.dir/sysreg.cpp.o.d"
  "liblz_arch.a"
  "liblz_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lz_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
