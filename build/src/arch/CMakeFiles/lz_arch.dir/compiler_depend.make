# Empty compiler generated dependencies file for lz_arch.
# This may be replaced when dependencies are built.
