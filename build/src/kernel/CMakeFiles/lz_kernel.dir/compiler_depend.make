# Empty compiler generated dependencies file for lz_kernel.
# This may be replaced when dependencies are built.
