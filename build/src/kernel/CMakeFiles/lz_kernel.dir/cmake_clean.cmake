file(REMOVE_RECURSE
  "CMakeFiles/lz_kernel.dir/kernel.cpp.o"
  "CMakeFiles/lz_kernel.dir/kernel.cpp.o.d"
  "liblz_kernel.a"
  "liblz_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lz_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
