file(REMOVE_RECURSE
  "liblz_kernel.a"
)
