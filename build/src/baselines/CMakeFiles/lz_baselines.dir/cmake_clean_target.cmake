file(REMOVE_RECURSE
  "liblz_baselines.a"
)
