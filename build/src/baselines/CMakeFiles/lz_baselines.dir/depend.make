# Empty dependencies file for lz_baselines.
# This may be replaced when dependencies are built.
