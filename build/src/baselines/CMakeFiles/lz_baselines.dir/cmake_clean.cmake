file(REMOVE_RECURSE
  "CMakeFiles/lz_baselines.dir/lwc.cpp.o"
  "CMakeFiles/lz_baselines.dir/lwc.cpp.o.d"
  "CMakeFiles/lz_baselines.dir/watchpoint.cpp.o"
  "CMakeFiles/lz_baselines.dir/watchpoint.cpp.o.d"
  "liblz_baselines.a"
  "liblz_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lz_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
