# Empty dependencies file for nvm_objects.
# This may be replaced when dependencies are built.
