file(REMOVE_RECURSE
  "CMakeFiles/nvm_objects.dir/nvm_objects.cpp.o"
  "CMakeFiles/nvm_objects.dir/nvm_objects.cpp.o.d"
  "nvm_objects"
  "nvm_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
