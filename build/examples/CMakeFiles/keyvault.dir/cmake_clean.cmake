file(REMOVE_RECURSE
  "CMakeFiles/keyvault.dir/keyvault.cpp.o"
  "CMakeFiles/keyvault.dir/keyvault.cpp.o.d"
  "keyvault"
  "keyvault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keyvault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
