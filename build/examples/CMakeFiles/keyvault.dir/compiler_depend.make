# Empty compiler generated dependencies file for keyvault.
# This may be replaced when dependencies are built.
