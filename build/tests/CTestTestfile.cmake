# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/arch_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/hv_test[1]_include.cmake")
include("/root/repo/build/tests/sanitizer_test[1]_include.cmake")
include("/root/repo/build/tests/lightzone_test[1]_include.cmake")
include("/root/repo/build/tests/calibration_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/security_pentest_test[1]_include.cmake")
include("/root/repo/build/tests/api_syscall_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/isolation_test[1]_include.cmake")
include("/root/repo/build/tests/interrupt_test[1]_include.cmake")
