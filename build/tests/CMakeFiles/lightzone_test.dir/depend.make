# Empty dependencies file for lightzone_test.
# This may be replaced when dependencies are built.
