file(REMOVE_RECURSE
  "CMakeFiles/lightzone_test.dir/lightzone_test.cpp.o"
  "CMakeFiles/lightzone_test.dir/lightzone_test.cpp.o.d"
  "lightzone_test"
  "lightzone_test.pdb"
  "lightzone_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightzone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
