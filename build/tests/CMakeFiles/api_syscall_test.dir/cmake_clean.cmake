file(REMOVE_RECURSE
  "CMakeFiles/api_syscall_test.dir/api_syscall_test.cpp.o"
  "CMakeFiles/api_syscall_test.dir/api_syscall_test.cpp.o.d"
  "api_syscall_test"
  "api_syscall_test.pdb"
  "api_syscall_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_syscall_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
