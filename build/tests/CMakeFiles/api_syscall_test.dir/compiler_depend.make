# Empty compiler generated dependencies file for api_syscall_test.
# This may be replaced when dependencies are built.
