file(REMOVE_RECURSE
  "CMakeFiles/fig5_nvm.dir/fig5_nvm.cpp.o"
  "CMakeFiles/fig5_nvm.dir/fig5_nvm.cpp.o.d"
  "fig5_nvm"
  "fig5_nvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
