
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_nvm.cpp" "bench/CMakeFiles/fig5_nvm.dir/fig5_nvm.cpp.o" "gcc" "bench/CMakeFiles/fig5_nvm.dir/fig5_nvm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/lz_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/lightzone/CMakeFiles/lz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/lz_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/lz_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/lz_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lz_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/lz_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/lz_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lz_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
