# Empty dependencies file for fig5_nvm.
# This may be replaced when dependencies are built.
