# Empty dependencies file for table4_traps.
# This may be replaced when dependencies are built.
