# Empty compiler generated dependencies file for table4_traps.
# This may be replaced when dependencies are built.
