file(REMOVE_RECURSE
  "CMakeFiles/table4_traps.dir/table4_traps.cpp.o"
  "CMakeFiles/table4_traps.dir/table4_traps.cpp.o.d"
  "table4_traps"
  "table4_traps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_traps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
