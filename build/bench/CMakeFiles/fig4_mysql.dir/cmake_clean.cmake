file(REMOVE_RECURSE
  "CMakeFiles/fig4_mysql.dir/fig4_mysql.cpp.o"
  "CMakeFiles/fig4_mysql.dir/fig4_mysql.cpp.o.d"
  "fig4_mysql"
  "fig4_mysql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_mysql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
