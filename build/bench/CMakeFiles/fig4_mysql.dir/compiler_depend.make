# Empty compiler generated dependencies file for fig4_mysql.
# This may be replaced when dependencies are built.
