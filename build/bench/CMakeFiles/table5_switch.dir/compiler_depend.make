# Empty compiler generated dependencies file for table5_switch.
# This may be replaced when dependencies are built.
