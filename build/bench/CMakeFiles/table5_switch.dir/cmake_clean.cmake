file(REMOVE_RECURSE
  "CMakeFiles/table5_switch.dir/table5_switch.cpp.o"
  "CMakeFiles/table5_switch.dir/table5_switch.cpp.o.d"
  "table5_switch"
  "table5_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
