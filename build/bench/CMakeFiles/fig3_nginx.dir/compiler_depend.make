# Empty compiler generated dependencies file for fig3_nginx.
# This may be replaced when dependencies are built.
