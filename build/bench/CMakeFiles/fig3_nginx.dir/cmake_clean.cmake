file(REMOVE_RECURSE
  "CMakeFiles/fig3_nginx.dir/fig3_nginx.cpp.o"
  "CMakeFiles/fig3_nginx.dir/fig3_nginx.cpp.o.d"
  "fig3_nginx"
  "fig3_nginx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_nginx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
