#!/usr/bin/env bash
# Tier-1 verification: configure, build (lz_obs is compiled with
# -Wall -Wextra -Werror, see src/obs/CMakeLists.txt), run the full test
# suite, then smoke-test the report/trace/profile artifact paths end to end.
set -euo pipefail

cd "$(dirname "$0")"

cmake -B build -G Ninja >/dev/null
cmake --build build
ctest --test-dir build --output-on-failure

# --json smoke test: run the Table 5 print phase only (no gbench loops).
# The default schema is now v2: latency histograms with percentiles and the
# cycle-sampling profile with per-domain attribution must all be present,
# and the document must round-trip through the repo's own validator.
report=/tmp/t5.json
rm -f "$report"
build/bench/table5_switch --json "$report" --benchmark_filter=NONE >/dev/null
test -s "$report"
grep -q '"schema":"lz.bench.report.v2"' "$report"
grep -q '"counters":{' "$report"
grep -q '"mem.tlb.l1_hit"' "$report"
grep -q '"histograms":{' "$report"
grep -q '"lz.gate.switch_cycles"' "$report"
grep -q '"p99":' "$report"
grep -q '"profile":{' "$report"
grep -q '"by_domain":{"vmid' "$report"
build/bench/report_check "$report"

# v1 golden: the legacy schema must reproduce the checked-in pre-v2 report
# byte for byte — the entire PMU/profiler/histogram stack is observe-only
# and must not move a single simulated cycle or counter. The run above
# executes with the superblock trace tier enabled (the default), so this is
# also the tier-on golden gate; the tier-off re-run proves the tier is
# architecturally invisible in both directions.
v1=/tmp/t5.v1.json
rm -f "$v1"
build/bench/table5_switch --report-schema v1 --json "$v1" \
  --benchmark_filter=NONE >/dev/null
cmp "$v1" BENCH_table5_v1.json
build/bench/report_check "$v1"
v1_off=/tmp/t5.v1.notrace.json
rm -f "$v1_off"
LZ_TRACE_TIER=0 build/bench/table5_switch --report-schema v1 --json "$v1_off" \
  --benchmark_filter=NONE >/dev/null
cmp "$v1_off" BENCH_table5_v1.json

# v2 determinism: everything in the simulated sections runs on the
# simulated clock (histogram percentiles, profile samples, hotspot tables
# included), so a tier-on and a tier-off run must agree on every
# simulation-derived byte. The optional "host" section (sim.trace.*) is the
# one legitimate difference between the two engines, so the gate is
# lz_report --require-sim-identical (strip "host", compare dumps) rather
# than a raw cmp.
v2_a=/tmp/t5.v2.a.json
v2_b=/tmp/t5.v2.b.json
rm -f "$v2_a" "$v2_b"
build/bench/table5_switch --json "$v2_a" --benchmark_filter=NONE >/dev/null
LZ_TRACE_TIER=0 build/bench/table5_switch --json "$v2_b" \
  --benchmark_filter=NONE >/dev/null
build/bench/lz_report "$v2_a" "$v2_b" \
  --require-cycles-equal --require-sim-identical >/dev/null

# Regression gates via lz_report against the checked-in v2 baseline: the
# simulated cycle total must match exactly (observe-only contract) and the
# gate-switch p99 may not regress more than 10%.
build/bench/lz_report BENCH_table5_v2.json "$v2_a" \
  --require-cycles-equal --hist-max lz.gate.switch_cycles:10 >/dev/null

# The shared flag parser rejects unknown flags loudly (exit 2), so a typo
# can never silently run the wrong experiment — and --help documents the
# shared set on exit 0.
if build/bench/table5_switch --no-such-flag >/dev/null 2>&1; then
  echo "ci.sh: unknown bench flag was not rejected" >&2
  exit 1
fi
build/bench/table5_switch --help | grep -q -- '--ts-period'

# Span tracing + time-series smoke: a 4-core httpd run with --trace must
# emit nested per-request duration spans (client request -> kernel task ->
# gate switch) with tenant labels, and --ts-period must add a schema-valid
# timeseries section with at least two snapshots.
fig3_json=/tmp/fig3.obs.json
fig3_trace=/tmp/fig3.obs.trace.json
rm -f "$fig3_json" "$fig3_trace"
build/bench/fig3_nginx --cores 4 --json "$fig3_json" --trace "$fig3_trace" \
  --ts-period 200000 --benchmark_filter=NONE >/dev/null
grep -q '"ph":"X"' "$fig3_trace"
grep -q '"cat":"span"' "$fig3_trace"
grep -q '"name":"request"' "$fig3_trace"
grep -q '"name":"task"' "$fig3_trace"
grep -q '"tenant":"httpd-worker' "$fig3_trace"
grep -q '"timeseries":{' "$fig3_json"
grep -q '"snapshots":\[{' "$fig3_json"
grep -q '"spans":{' "$fig3_json"
build/bench/report_check "$fig3_json"

# Trace tier on vs off across a real workload: fig3's httpd run registers
# the sim.trace.* host counters with the tier on and none with it off, so
# the "host" sections legitimately differ while every simulated section
# must stay byte-identical — exactly what --require-sim-identical gates.
# (No --ts-period here: SMP sample timestamps are host-scheduling
# dependent, see EXPERIMENTS.md.)
fig3_on=/tmp/fig3.obs.trace_on.json
fig3_off=/tmp/fig3.obs.notrace.json
rm -f "$fig3_on" "$fig3_off"
build/bench/fig3_nginx --cores 4 --json "$fig3_on" \
  --benchmark_filter=NONE >/dev/null
LZ_TRACE_TIER=0 build/bench/fig3_nginx --cores 4 --json "$fig3_off" \
  --benchmark_filter=NONE >/dev/null
grep -q '"host":{"sim.trace.' "$fig3_on"
if grep -q '"host":' "$fig3_off"; then
  echo "ci.sh: tier-off run unexpectedly registered host counters" >&2
  exit 1
fi
build/bench/lz_report "$fig3_on" "$fig3_off" \
  --require-cycles-equal --require-sim-identical >/dev/null

# Metrics-plane smoke: the per-tenant exposition must carry the per-worker
# rps and request-latency summaries plus the per-tenant/domain switch-cycle
# families, and two same-seed runs must render byte-identical snapshots
# (every series value is derived from simulated work only).
expo_a=/tmp/fig3.metrics.a.prom
expo_b=/tmp/fig3.metrics.b.prom
rm -f "$expo_a" "$expo_b"
build/bench/fig3_nginx --cores 4 --metrics-out "$expo_a" \
  --benchmark_filter=NONE >/dev/null
build/bench/fig3_nginx --cores 4 --metrics-out "$expo_b" \
  --benchmark_filter=NONE >/dev/null
cmp "$expo_a" "$expo_b"
grep -q '^httpd_rps{tenant="httpd-worker0",quantile="0.99"}' "$expo_a"
grep -q '^httpd_requests{tenant="httpd-worker3"}' "$expo_a"
grep -q '^httpd_request_cycles{tenant="httpd-worker0",quantile="0.5"}' "$expo_a"
grep -q '^lz_tenant_gate_switch_cycles{tenant=' "$expo_a"
grep -q '^lz_tenant_world_switch_cycles{tenant=' "$expo_a"

# Overhead self-audit, part 1: arming the metrics plane (and the final
# exposition write) may not move a simulated cycle or counter — the armed
# table5 run must be sim-identical to the flagless baseline.
t5_metrics=/tmp/t5.metrics.json
t5_expo=/tmp/t5.metrics.prom
rm -f "$t5_metrics" "$t5_expo"
build/bench/table5_switch --json "$t5_metrics" --metrics-out "$t5_expo" \
  --benchmark_filter=NONE >/dev/null
test -s "$t5_expo"
grep -q '^lz_tenant_gate_switch_cycles{tenant=' "$t5_expo"
build/bench/lz_report "$v2_a" "$t5_metrics" \
  --require-cycles-equal --require-sim-identical >/dev/null

# Overhead self-audit, part 2: with --self-profile the obs stack attributes
# its own host wall-clock (sampling, rendering, dump pump) to
# host.self.obs. On the engine-heavy throughput bench with the pump firing
# every 10M simulated cycles, the obs stack must stay below 25% of the
# engine's own run-tier time — the metrics plane may observe the engine,
# not crowd it out.
audit_expo=/tmp/throughput.audit.prom
rm -f "$audit_expo"
build/bench/throughput --iters 1 --metrics-out "$audit_expo" \
  --self-profile --ts-period 10000000 >/dev/null
awk '/^host_self_run_ticks/ { run = $2 }
     /^host_self_obs_ticks/ { obs = $2 }
     END {
       if (run == 0 || obs == 0) { print "self-audit: no ticks"; exit 1 }
       ratio = obs / run
       printf "self-audit: host.self.obs / host.self.run = %.4f\n", ratio
       exit ratio < 0.25 ? 0 : 1
     }' "$audit_expo"

# Trend gate: the checked-in bench history must accept a fresh table5 run
# (cycles.total is simulated, so the drift from the recorded median is
# exactly zero) and append it — run against a scratch copy so the tree
# stays clean.
trend_hist=/tmp/history.jsonl
cp bench/history/history.jsonl "$trend_hist"
build/bench/lz_report --trend "$v2_a" --history "$trend_hist" \
  --trend-max-drift 0.5 >/dev/null
test "$(wc -l < "$trend_hist")" -eq \
  "$(( $(wc -l < bench/history/history.jsonl) + 1 ))"

# SMP determinism smoke: the 4-core Table 5 run (per-core TLB hit rates,
# concurrent scheduler threads) must be byte-identical across two runs.
smp_a=/tmp/t5.smp.a.json
smp_b=/tmp/t5.smp.b.json
rm -f "$smp_a" "$smp_b"
build/bench/table5_switch --cores 4 --json "$smp_a" --benchmark_filter=NONE >/dev/null
build/bench/table5_switch --cores 4 --json "$smp_b" --benchmark_filter=NONE >/dev/null
cmp "$smp_a" "$smp_b"
grep -q '"sim.core3.tlb.l1_hit"' "$smp_a"
build/bench/report_check "$smp_a"

# Differential fuzz gate (DESIGN.md section 10): >=10k seeded Table-2 ops
# across 4 cores through live module + shadow model. The binary exits
# non-zero on any status divergence, TLB-vs-walk divergence, non-byte-
# identical replay, or 1-vs-4-core counter drift.
build/bench/fuzz_table2 --seed 1 --cores 4 --ops 2600
build/bench/fuzz_table2 --seed 20260805 --cores 2 --ops 1500

# Encoded-A64 stream fuzz gate (DESIGN.md section 15): >=10k seeded
# instruction streams through the full entry/sanitizer/gate/fault path with
# the break-before-make and TLB-vs-walk oracles armed. Each invocation runs
# its streams twice on the requested topology (byte-identical replay) and
# once on 1 core (same outcomes, counters modulo the SMP-variant set); any
# oracle divergence aborts with a flight-recorder dump.
build/bench/fuzz_a64 --seed 1 --cores 4 --streams 2000
build/bench/fuzz_a64 --seed 20260808 --cores 2 --streams 1500

# Backend matrix (DESIGN.md section 14): every IsolationBackend runs the
# Table-5 program and a fuzz smoke through the identical op generator. The
# ttbr_pan leg is the refactor gate — routing the verbs through the
# interface may not move a byte of the checked-in golden. The model legs
# must emit schema-valid v2 reports and fuzz divergence-free.
for backend in ttbr_pan poe cca watchpoint lwc; do
  bk=/tmp/t5.backend.$backend.json
  rm -f "$bk"
  build/bench/table5_switch --backend "$backend" --json "$bk" \
    --benchmark_filter=NONE >/dev/null
  build/bench/report_check "$bk"
  build/bench/fuzz_table2 --backend "$backend" --seed 7 --cores 2 --ops 800
done
cmp /tmp/t5.backend.ttbr_pan.json BENCH_table5_v2.json
grep -q '"backend.poe.cortex_host.128.key_recycles"' /tmp/t5.backend.poe.json
grep -q '"backend.cca.cortex_host.128.gpt_walks"' /tmp/t5.backend.cca.json
tp_poe=/tmp/throughput.backend.poe.json
rm -f "$tp_poe"
build/bench/throughput --backend poe --json "$tp_poe" >/dev/null
build/bench/report_check "$tp_poe"
grep -q '"backend.poe.avg_cycles"' "$tp_poe"

# Release (-O2) leg: the hot-path engine (L0 translation cache, decoded-page
# cache, batched accounting) must keep *simulated* cycle totals byte-stable,
# and with the profiler off (--sample-period 0) host throughput must stay
# within 10% of the checked-in baseline — the observability stack may not
# slow down the disabled path. Wall-clock noise is real, so the gate takes
# the best of three run-level medians (each already a median of three
# in-process repeats); noise only ever pushes MIPS down.
cmake -B build-release -G Ninja -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-release --target throughput report_check
for i in 1 2 3; do
  tp=/tmp/throughput.$i.json
  rm -f "$tp"
  build-release/bench/throughput --sample-period 0 --json "$tp" >/dev/null
  grep -q '"schema":"lz.bench.report.v2"' "$tp"
  build-release/bench/report_check "$tp"
done
# lz_report takes the best of the three candidates against the checked-in
# baseline: the simulated cycle totals must match exactly, the MIPS median
# may not fall more than 10% below the baseline, and the trace-tier kernels
# (straight_line, tight_loop) must clear the absolute 500 host-MIPS floor
# the superblock tier was built to hit (DESIGN.md section 16).
build/bench/lz_report BENCH_throughput.json \
  /tmp/throughput.1.json /tmp/throughput.2.json /tmp/throughput.3.json \
  --require-cycles-equal --result-min straight_line.mips.median:10 \
  --result-floor straight_line.mips.median:500 \
  --result-floor tight_loop.mips.median:500

# TSan build: the SMP scheduler, per-core TLB shootdown, obs counters, the
# lock-free hot path (L0 generations, PhysMem radix, batched flushes), the
# PMU/profiler/histogram instruments, the BBM write-protocol monitor and
# both concurrent fuzz drivers must be clean under the thread sanitizer.
cmake -B build-tsan -G Ninja -DLZ_SANITIZE=thread >/dev/null
cmake --build build-tsan --target smp_test obs_test obs_v3_test \
  metrics_test hotpath_test histogram_test profiler_test pmu_test \
  backend_test bbm_test fuzz_table2 fuzz_a64 throughput
build-tsan/tests/smp_test
build-tsan/tests/obs_test
build-tsan/tests/obs_v3_test
build-tsan/tests/metrics_test
# Tier forced on explicitly: the trace dispatch path, the DVM teardown hook
# and the generation-tag invalidation must be race-free on SMP topologies.
LZ_TRACE_TIER=1 build-tsan/tests/hotpath_test
build-tsan/tests/histogram_test
build-tsan/tests/profiler_test
build-tsan/tests/pmu_test
build-tsan/tests/backend_test
build-tsan/tests/bbm_test
build-tsan/bench/fuzz_table2 --seed 3 --cores 4 --ops 400
LZ_TRACE_TIER=1 build-tsan/bench/fuzz_a64 --seed 3 --cores 4 --streams 200
build-tsan/bench/throughput --iters 1 --cores 2 >/dev/null

# ASan build: the fuzz driver exercises free/refault paths hard (it is
# what caught the dangling-region use-after-free in lz_free); keep it
# memory-clean under the address sanitizer, and sweep the new observability
# instruments for leaks and overruns too.
cmake -B build-asan -G Ninja -DLZ_SANITIZE=address >/dev/null
cmake --build build-asan --target fuzz_table2 fuzz_a64 check_test bbm_test \
  hotpath_test histogram_test profiler_test pmu_test obs_v3_test \
  backend_test metrics_test
build-asan/tests/check_test
build-asan/tests/metrics_test
build-asan/tests/bbm_test
LZ_TRACE_TIER=1 build-asan/tests/hotpath_test
build-asan/tests/histogram_test
build-asan/tests/profiler_test
build-asan/tests/pmu_test
build-asan/tests/obs_v3_test
build-asan/tests/backend_test
build-asan/bench/fuzz_table2 --seed 5 --cores 4 --ops 600
LZ_TRACE_TIER=1 build-asan/bench/fuzz_a64 --seed 5 --cores 4 --streams 200

echo "ci.sh: OK"
