#!/usr/bin/env bash
# Tier-1 verification: configure, build (lz_obs is compiled with
# -Wall -Wextra -Werror, see src/obs/CMakeLists.txt), run the full test
# suite, then smoke-test the --json report path end to end.
set -euo pipefail

cd "$(dirname "$0")"

cmake -B build -G Ninja >/dev/null
cmake --build build
ctest --test-dir build --output-on-failure

# --json smoke test: run the Table 5 print phase only (no gbench loops),
# then check the report exists and is well-formed JSON with the expected
# schema tag and a non-empty counter section.
report=/tmp/t5.json
rm -f "$report"
build/bench/table5_switch --json "$report" --benchmark_filter=NONE >/dev/null
test -s "$report"
grep -q '"schema":"lz.bench.report.v1"' "$report"
grep -q '"counters":{' "$report"
grep -q '"mem.tlb.l1_hit"' "$report"

# SMP determinism smoke: the 4-core Table 5 run (per-core TLB hit rates,
# concurrent scheduler threads) must be byte-identical across two runs.
smp_a=/tmp/t5.smp.a.json
smp_b=/tmp/t5.smp.b.json
rm -f "$smp_a" "$smp_b"
build/bench/table5_switch --cores 4 --json "$smp_a" --benchmark_filter=NONE >/dev/null
build/bench/table5_switch --cores 4 --json "$smp_b" --benchmark_filter=NONE >/dev/null
cmp "$smp_a" "$smp_b"
grep -q '"sim.core3.tlb.l1_hit"' "$smp_a"

# Differential fuzz gate (DESIGN.md section 10): >=10k seeded Table-2 ops
# across 4 cores through live module + shadow model. The binary exits
# non-zero on any status divergence, TLB-vs-walk divergence, non-byte-
# identical replay, or 1-vs-4-core counter drift.
build/bench/fuzz_table2 --seed 1 --cores 4 --ops 2600
build/bench/fuzz_table2 --seed 20260805 --cores 2 --ops 1500

# Release (-O2) leg: the hot-path engine (L0 translation cache, decoded-page
# cache, batched accounting) must keep *simulated* cycle totals byte-stable.
# The throughput bench reports host MIPS (informational, machine-dependent —
# printed but not gated) alongside simulated cycle totals, which are gated
# against the checked-in BENCH_throughput.json baseline.
cmake -B build-release -G Ninja -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-release --target throughput
tp=/tmp/throughput.json
rm -f "$tp"
build-release/bench/throughput --json "$tp"
grep -q '"schema":"lz.bench.report.v1"' "$tp"
want=$(grep -o '"cycles":{"total":[0-9]*' BENCH_throughput.json)
got=$(grep -o '"cycles":{"total":[0-9]*' "$tp")
if [ "$want" != "$got" ]; then
  echo "ci.sh: throughput simulated cycle total drifted: baseline ${want#*:total:} vs ${got#*:total:}" >&2
  exit 1
fi

# TSan build: the SMP scheduler, per-core TLB shootdown, obs counters, the
# lock-free hot path (L0 generations, PhysMem radix, batched flushes) and
# the concurrent fuzz driver must be clean under the thread sanitizer.
cmake -B build-tsan -G Ninja -DLZ_SANITIZE=thread >/dev/null
cmake --build build-tsan --target smp_test obs_test hotpath_test fuzz_table2 throughput
build-tsan/tests/smp_test
build-tsan/tests/obs_test
build-tsan/tests/hotpath_test
build-tsan/bench/fuzz_table2 --seed 3 --cores 4 --ops 400
build-tsan/bench/throughput --iters 1 --cores 2 >/dev/null

# ASan build: the fuzz driver exercises free/refault paths hard (it is
# what caught the dangling-region use-after-free in lz_free); keep it
# memory-clean under the address sanitizer.
cmake -B build-asan -G Ninja -DLZ_SANITIZE=address >/dev/null
cmake --build build-asan --target fuzz_table2 check_test hotpath_test
build-asan/tests/check_test
build-asan/tests/hotpath_test
build-asan/bench/fuzz_table2 --seed 5 --cores 4 --ops 600

echo "ci.sh: OK"
