#!/usr/bin/env bash
# Tier-1 verification: configure, build (lz_obs is compiled with
# -Wall -Wextra -Werror, see src/obs/CMakeLists.txt), run the full test
# suite, then smoke-test the --json report path end to end.
set -euo pipefail

cd "$(dirname "$0")"

cmake -B build -G Ninja >/dev/null
cmake --build build
ctest --test-dir build --output-on-failure

# --json smoke test: run the Table 5 print phase only (no gbench loops),
# then check the report exists and is well-formed JSON with the expected
# schema tag and a non-empty counter section.
report=/tmp/t5.json
rm -f "$report"
build/bench/table5_switch --json "$report" --benchmark_filter=NONE >/dev/null
test -s "$report"
grep -q '"schema":"lz.bench.report.v1"' "$report"
grep -q '"counters":{' "$report"
grep -q '"mem.tlb.l1_hit"' "$report"

echo "ci.sh: OK"
