#!/usr/bin/env bash
# Tier-1 verification: configure, build (lz_obs is compiled with
# -Wall -Wextra -Werror, see src/obs/CMakeLists.txt), run the full test
# suite, then smoke-test the --json report path end to end.
set -euo pipefail

cd "$(dirname "$0")"

cmake -B build -G Ninja >/dev/null
cmake --build build
ctest --test-dir build --output-on-failure

# --json smoke test: run the Table 5 print phase only (no gbench loops),
# then check the report exists and is well-formed JSON with the expected
# schema tag and a non-empty counter section.
report=/tmp/t5.json
rm -f "$report"
build/bench/table5_switch --json "$report" --benchmark_filter=NONE >/dev/null
test -s "$report"
grep -q '"schema":"lz.bench.report.v1"' "$report"
grep -q '"counters":{' "$report"
grep -q '"mem.tlb.l1_hit"' "$report"

# SMP determinism smoke: the 4-core Table 5 run (per-core TLB hit rates,
# concurrent scheduler threads) must be byte-identical across two runs.
smp_a=/tmp/t5.smp.a.json
smp_b=/tmp/t5.smp.b.json
rm -f "$smp_a" "$smp_b"
build/bench/table5_switch --cores 4 --json "$smp_a" --benchmark_filter=NONE >/dev/null
build/bench/table5_switch --cores 4 --json "$smp_b" --benchmark_filter=NONE >/dev/null
cmp "$smp_a" "$smp_b"
grep -q '"sim.core3.tlb.l1_hit"' "$smp_a"

# TSan build: the SMP scheduler, per-core TLB shootdown and obs counters
# must be clean under the thread sanitizer.
cmake -B build-tsan -G Ninja -DLZ_SANITIZE=thread >/dev/null
cmake --build build-tsan --target smp_test obs_test
build-tsan/tests/smp_test
build-tsan/tests/obs_test

echo "ci.sh: OK"
